"""Design-space exploration: declarative points, staged cached pipeline.

A :class:`DesignPoint` (grid, link class, objective, strategy, seed,
budgets) flows through staged **generate -> route -> evaluate** work,
each stage a content-addressed runner task family, so MILP solves,
annealing runs, MCLB routing, and saturation probes fan across worker
processes and cache exactly like sim points.  ``explore()`` sweeps a
grid of points and ranks the outcomes; ``repro explore`` is the CLI
surface.

Layers:

* :mod:`~repro.pipeline.design` — :class:`DesignPoint` and
  :func:`design_grid` (the declarative surface + worker-side dispatch);
* :mod:`~repro.pipeline.stages` — staged batch execution with portfolio
  expansion (SA warm-starting the exact solve) and best-wins merge;
* :mod:`~repro.pipeline.hierarchy` — the ``hierarchical`` strategy
  (exact clusters + annealed inter-cluster stitching) for 256-1024-
  router points;
* :mod:`~repro.pipeline.explore` — end-to-end sweeps, ranking, and
  on-disk artifacts.
"""

from .design import MAX_SCOP_ROUTERS, OBJECTIVES, STRATEGIES, DesignPoint, design_grid
from .explore import ExploreResult, ExploreRow, explore, point_artifact_path
from .hierarchy import generate_hierarchical
from .stages import (
    SIM_CUTOFF,
    PointEvaluation,
    evaluate_tables,
    generate_point,
    generate_points,
    route_topologies,
)

__all__ = [
    "DesignPoint",
    "design_grid",
    "OBJECTIVES",
    "STRATEGIES",
    "MAX_SCOP_ROUTERS",
    "generate_point",
    "generate_points",
    "route_topologies",
    "evaluate_tables",
    "PointEvaluation",
    "SIM_CUTOFF",
    "generate_hierarchical",
    "explore",
    "ExploreResult",
    "ExploreRow",
    "point_artifact_path",
]
