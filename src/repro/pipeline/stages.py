"""The staged generate -> route -> evaluate pipeline over design points.

Each stage is a batch of content-addressed runner tasks (families
``generation``, ``routing``, and the existing ``sat_search``), so MILP
solves, annealing runs, MCLB table compilations, and saturation probes
all fan across worker processes and cache exactly like sim points do:
a re-run of any sweep is pure cache hits, and an interrupted sweep
resumes at task granularity.

Portfolio expansion happens here, in two waves:

1. every portfolio point's SA unit runs (alongside all plain ``sa``
   and ``milp`` points);
2. every portfolio point's exact unit runs, warm-started from its SA
   result where the backend can consume it (``initial_incumbent``
   through ``solve_bnb`` for distance objectives on the ``bnb``
   backend, an initial lazy cut for SCOp on either backend);

then a best-wins merge picks, per point, the better of the two by
objective value within the point's budgets.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runner import tasks as _tasks
from ..runner.orchestrator import Runner, RoutingJob, SaturationJob
from .design import DesignPoint

#: Objectives where smaller is better (sparsest cut maximizes).
_MINIMIZING = {"latency": True, "shuffle": True, "sparsest_cut": False}

#: Largest router count evaluated with cycle-accurate saturation
#: searches; larger candidates are ranked on exact graph metrics alone
#: (their ``bfs`` tables ship a trivial single-VC layering — see
#: ``LAYERING_CUTOFF`` in :mod:`repro.routing.dest_tree` — and a
#: simulation sweep at that scale would dwarf the generation cost).
SIM_CUTOFF = 128


@contextmanager
def _ensure_runner(runner: Optional[Runner]):
    """The caller's runner, or an ephemeral serial/uncached one.

    The ephemeral fallback keeps the no-runner path byte-equivalent to
    direct in-process calls: no worker processes, no disk writes.
    """
    if runner is not None:
        yield runner
        return
    with Runner(parallel=1, no_cache=True) as ephemeral:
        yield ephemeral


def _failure(res: Any) -> Optional[str]:
    """The error string of a failed generation result, else ``None``.

    ``generation`` tasks decode to a :class:`GenerationResult` on
    success and to the raw ``{"ok": false, "error": ...}`` dict on
    failure (failures are data, never cached).
    """
    if res is None:
        return "unknown"
    if isinstance(res, dict):
        return str(res.get("error", "unknown"))
    return None


def _better(objective: str, a: Any, b: Any) -> Any:
    """Best-wins merge of two generation results (failures lose).

    Ties go to ``b`` — the exact wave-2 half in portfolio merges — so a
    proven-optimal result (status/mip_gap certificates included) is
    never discarded for an equal-valued heuristic one.
    """
    if _failure(a) is not None:
        return b
    if _failure(b) is not None:
        return a
    if _MINIMIZING[objective]:
        return a if a.objective < b.objective else b
    return a if a.objective > b.objective else b


def generate_points(
    points: Sequence[DesignPoint],
    runner: Optional[Runner] = None,
    timings: Optional[Dict[str, float]] = None,
) -> List[Any]:
    """Generate one topology per design point (stage 1).

    Returns :class:`~repro.core.netsmith.GenerationResult` objects in
    submission order.  Portfolio points expand into an SA wave and a
    warm-started exact wave with a best-wins merge; a point whose every
    strategy failed raises with the collected errors.

    Pass a dict as ``timings`` to receive per-wave wall-clock seconds
    (``wave1_s``, ``wave2_s``) and the worker count each wave could
    actually fan out to (``wave1_workers``, ``wave2_workers`` — the
    pool's effective workers capped by the wave's task count) —
    observability for the generation benchmark, so scale regressions
    are attributable to a wave and a degenerate pool on the exact wave
    is detectable rather than silently folded into the aggregate.
    """
    import time as _time

    points = list(points)
    for p in points:
        p.validate()
    with _ensure_runner(runner) as r:
        results: List[Optional[Any]] = [None] * len(points)
        errors: Dict[int, List[str]] = {}

        # Wave 1: all atomic points, plus every portfolio point's SA half.
        wave1: List[Tuple[int, Dict[str, Any]]] = []
        for i, p in enumerate(points):
            unit = replace(p, strategy="sa") if p.strategy == "portfolio" else p
            wave1.append((i, _tasks.generation_payload(unit)))
        wave_t0 = _time.perf_counter()
        wave1_results = r.run_tasks("generation", [pl for _, pl in wave1])
        if timings is not None:
            timings["wave1_s"] = _time.perf_counter() - wave_t0
            timings["wave1_workers"] = min(r.effective_parallel, len(wave1))
        for (i, payload), res in zip(wave1, wave1_results):
            results[i] = res
            err = _failure(res)
            if err is not None:
                errors.setdefault(i, []).append(
                    f"{payload['point']['strategy']}: {err}"
                )

        # Wave 2: the exact half of each portfolio point, seeded from SA.
        wave2: List[Tuple[int, Dict[str, Any]]] = []
        for i, p in enumerate(points):
            if p.strategy != "portfolio":
                continue
            sa = results[i]
            exact = replace(p, strategy="milp")
            if _failure(sa) is not None:
                wave2.append((i, _tasks.generation_payload(exact)))
            elif p.objective == "sparsest_cut":
                wave2.append((i, _tasks.generation_payload(
                    exact, seed_links=sa.topology.directed_links,
                )))
            elif p.backend == "bnb":
                # solve_bnb is the only backend with a MIP-start hook;
                # a seed HiGHS cannot consume stays out of the payload
                # (and therefore out of the cache key).
                wave2.append((i, _tasks.generation_payload(
                    exact, seed_incumbent=sa.objective,
                )))
            else:
                wave2.append((i, _tasks.generation_payload(exact)))
        if timings is not None:
            timings["wave2_s"] = 0.0
            timings["wave2_workers"] = 0
        if wave2:
            wave_t0 = _time.perf_counter()
            wave2_results = r.run_tasks("generation", [pl for _, pl in wave2])
            if timings is not None:
                timings["wave2_s"] = _time.perf_counter() - wave_t0
                timings["wave2_workers"] = min(r.effective_parallel, len(wave2))
            for (i, _payload), res in zip(wave2, wave2_results):
                err = _failure(res)
                if err is not None:
                    errors.setdefault(i, []).append(f"milp: {err}")
                results[i] = _better(points[i].objective, results[i], res)

        failed = [i for i, res in enumerate(results) if _failure(res) is not None]
        if failed:
            detail = "; ".join(
                f"{points[i].label()} ({'; '.join(errors.get(i, ['unknown']))})"
                for i in failed
            )
            raise RuntimeError(f"generation failed for: {detail}")
        return results


def generate_point(point: DesignPoint, runner: Optional[Runner] = None):
    """Single-point convenience wrapper over :func:`generate_points`."""
    return generate_points([point], runner=runner)[0]


def route_topologies(
    topologies: Sequence[Any],
    policy: str = "mclb",
    seed: int = 0,
    max_vcs: Optional[int] = None,
    time_limit: float = 60.0,
    runner: Optional[Runner] = None,
) -> List[Any]:
    """Route + VC-allocate + compile tables for many topologies (stages
    2-3), fanned across workers as ``routing`` tasks keyed by link set
    (identically-linked topologies share one compilation)."""
    jobs = [
        RoutingJob(
            topology=topo, policy=policy, seed=seed,
            max_vcs=max_vcs, time_limit=time_limit,
        )
        for topo in topologies
    ]
    with _ensure_runner(runner) as r:
        return r.tables(jobs)


@dataclass
class PointEvaluation:
    """Stage-4 measurements for one routed design point."""

    avg_hops: float
    diameter: int
    sparsest_cut: float
    #: Measured saturation injection rate, packets/node/cycle; ``NaN``
    #: when the point sits above the simulation size cutoff.
    saturation: float
    #: The same, in packets/node/ns at the link class's clock.
    saturation_ns: float
    #: Degraded/baseline saturation ratio under the canonical fault (the
    #: most-central full-duplex link down); ``None`` when robustness
    #: evaluation was not requested.
    robustness: Optional[float] = None


def evaluate_tables(
    tables: Sequence[Any],
    link_classes: Sequence[Optional[str]],
    seed: int = 0,
    warmup: int = 300,
    measure: int = 900,
    iters: int = 5,
    runner: Optional[Runner] = None,
    engine: Optional[str] = None,
    robustness: bool = False,
    sim_cutoff: int = SIM_CUTOFF,
) -> List[PointEvaluation]:
    """Evaluate routed tables: graph metrics locally (cheap, exact for
    n <= 22) plus a uniform-traffic saturation search per table through
    the cached ``sat_search`` family.

    With ``robustness=True`` each table also runs a degraded saturation
    search under its canonical fault — the most-central full-duplex link
    down from cycle 0 — batched into the same ``sat_search`` fan-out;
    the evaluation's ``robustness`` is the degraded/baseline ratio
    (retained capacity, higher is better).

    Tables with more than ``sim_cutoff`` routers skip the simulation
    stage entirely (graph metrics only): ``saturation`` and
    ``saturation_ns`` come back ``NaN`` and ``robustness`` stays
    ``None``.  ``sim_cutoff=0`` disables simulation for the whole batch.
    """
    from ..topology import (
        CLASS_CLOCK_GHZ,
        average_hops,
        diameter as topo_diameter,
        sparsest_cut,
    )

    simulated = [i for i, t in enumerate(tables) if t.topology.n <= sim_cutoff]
    with _ensure_runner(runner) as r:
        jobs = [
            SaturationJob(
                table=tables[i],
                traffic=_tasks.TrafficSpec.uniform(tables[i].topology.n),
                name=tables[i].topology.name,
                warmup=warmup,
                measure=measure,
                iters=iters,
                seed=seed,
                engine=engine,
            )
            for i in simulated
        ]
        if robustness:
            from ..faults import central_link_faults

            jobs = jobs + [
                replace(
                    j,
                    name=f"{j.name}/faulted",
                    faults=central_link_faults(j.table.topology, 1),
                )
                for j in jobs
            ]
        results = r.saturations(jobs)
    saturations = [float("nan")] * len(tables)
    degraded: List[Optional[float]] = [None] * len(tables)
    for k, i in enumerate(simulated):
        saturations[i] = results[k]
        if robustness:
            degraded[i] = results[len(simulated) + k]

    out: List[PointEvaluation] = []
    for table, cls, sat, deg in zip(tables, link_classes, saturations, degraded):
        topo = table.topology
        clock = CLASS_CLOCK_GHZ.get(cls or topo.link_class or "", 1.0)
        out.append(PointEvaluation(
            avg_hops=average_hops(topo),
            diameter=topo_diameter(topo),
            sparsest_cut=sparsest_cut(topo, exact=topo.n <= 22).value,
            saturation=float(sat),
            saturation_ns=float(sat) * clock,
            robustness=(
                None if deg is None
                else (float(deg) / float(sat) if sat > 0 else 0.0)
            ),
        ))
    return out
