"""DSENT-substitute analytical power and area model."""

from .dsent import (
    INTERPOSER_AREA_MM2,
    PowerArea,
    analyze,
    compare_to_mesh,
)

__all__ = ["PowerArea", "analyze", "compare_to_mesh", "INTERPOSER_AREA_MM2"]
