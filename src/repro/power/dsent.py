"""DSENT-substitute power/area model (paper Section V-D, Fig. 9).

Fig. 9 reports *mesh-normalized* NoI power and area from DSENT's 22nm
bulk LVT model.  The relative quantities depend on a handful of
first-order relationships, which this model captures:

* **router leakage** scales with router count and radix — identical
  across the compared topologies (same 20 routers, same radix), so the
  leakage bar is flat, as the paper observes;
* **router dynamic** power scales with flit activity and clock;
* **wire dynamic** power scales with aggregate wire length, activity and
  clock — the variable component across topologies;
* **wire leakage** (repeaters) scales with aggregate wire length;
* **area** splits into router area (radix-quadratic crossbars) and wire
  area (length times pitch) — wires dominate, per the paper.

Coefficients are calibrated so a 20-router mesh at 3.6 GHz lands near
DSENT-published magnitudes for 22nm interposer NoCs (~tens of mW per
router-class component); only ratios matter for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..topology import Topology, total_wire_length
from ..topology.layout import CLASS_CLOCK_GHZ

#: Technology constants (22nm bulk LVT flavored).
ROUTER_LEAKAGE_MW = 2.1  # per router
ROUTER_DYNAMIC_MW_PER_GHZ = 1.3  # per router at activity 1.0
WIRE_LEAKAGE_MW_PER_UNIT = 0.35  # repeater leakage per grid-unit of wire
WIRE_DYNAMIC_MW_PER_UNIT_GHZ = 0.55  # per grid-unit at activity 1.0

ROUTER_AREA_MM2 = 0.018  # per router (radix-4 NoI crossbar + buffers)
ROUTER_AREA_RADIX_EXP = 2.0  # crossbar area ~ radix^2
WIRE_AREA_MM2_PER_UNIT = 0.024  # per grid-unit of full-duplex wiring
BASE_RADIX = 4

#: Interposer area for the 4-chiplet system of Fig. 2 (mm^2), used for the
#: "under 3% of interposer area" check.
INTERPOSER_AREA_MM2 = 480.0


@dataclass
class PowerArea:
    """Power (mW) and area (mm^2) breakdown for one NoI topology."""

    name: str
    static_power_mw: float
    dynamic_power_mw: float
    router_area_mm2: float
    wire_area_mm2: float

    @property
    def total_power_mw(self) -> float:
        return self.static_power_mw + self.dynamic_power_mw

    @property
    def total_area_mm2(self) -> float:
        return self.router_area_mm2 + self.wire_area_mm2

    @property
    def interposer_area_fraction(self) -> float:
        return self.total_area_mm2 / INTERPOSER_AREA_MM2

    def normalized_to(self, base: "PowerArea") -> Dict[str, float]:
        """Fig. 9's mesh-relative quantities (lower is better)."""
        return {
            "static_power": self.static_power_mw / base.static_power_mw,
            "dynamic_power": self.dynamic_power_mw / base.dynamic_power_mw,
            "total_power": self.total_power_mw / base.total_power_mw,
            "router_area": self.router_area_mm2 / base.router_area_mm2,
            "wire_area": self.wire_area_mm2 / base.wire_area_mm2,
            "total_area": self.total_area_mm2 / base.total_area_mm2,
        }


def analyze(
    topo: Topology,
    clock_ghz: Optional[float] = None,
    activity: float = 0.3,
    radix: int = BASE_RADIX,
) -> PowerArea:
    """Estimate the NoI's power and area.

    ``activity`` is the average channel utilization from simulation (the
    paper feeds measured activity statistics into DSENT); ``clock_ghz``
    defaults to the topology's link-class clock, which is what gives
    *large* topologies their ~17% dynamic-power advantage over *small*
    ones despite longer wires.
    """
    if clock_ghz is None:
        clock_ghz = CLASS_CLOCK_GHZ.get(topo.link_class or "", 3.6)
    wire_units = total_wire_length(topo) / 2.0  # full-duplex resources

    static = (
        topo.n * ROUTER_LEAKAGE_MW + wire_units * WIRE_LEAKAGE_MW_PER_UNIT
    )
    dynamic = (
        topo.n * ROUTER_DYNAMIC_MW_PER_GHZ * clock_ghz * activity
        + wire_units * WIRE_DYNAMIC_MW_PER_UNIT_GHZ * clock_ghz * activity
    )
    router_area = topo.n * ROUTER_AREA_MM2 * (radix / BASE_RADIX) ** ROUTER_AREA_RADIX_EXP
    wire_area = wire_units * WIRE_AREA_MM2_PER_UNIT
    return PowerArea(
        name=topo.name,
        static_power_mw=static,
        dynamic_power_mw=dynamic,
        router_area_mm2=router_area,
        wire_area_mm2=wire_area,
    )


def compare_to_mesh(
    topos,
    mesh_topo: Topology,
    activity: float = 0.3,
) -> Dict[str, Dict[str, float]]:
    """Fig. 9's table: per-topology power/area normalized to mesh."""
    base = analyze(mesh_topo, activity=activity)
    out = {}
    for t in topos:
        out[t.name] = analyze(t, activity=activity).normalized_to(base)
    return out
