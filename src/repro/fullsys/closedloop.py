"""Closed-loop (request/response) network simulation for full-system runs.

Extends the open-loop :class:`~repro.sim.network.NetworkSimulator` with
the structure of the paper's full-system traffic (Table IV):

* each NoI router aggregates a concentration of cores (4 per router; the
  outer columns host memory controllers instead, Fig. 2(b));
* cores issue *requests* (1-flit control packets) to a directory/memory
  target and stall-track them until the *response* (9-flit data) returns;
  per-router outstanding-request budget models the cores' aggregate MLP;
* responses are generated at the destination after a fixed service
  latency (directory lookup / DRAM access);
* the NoC-to-NoI clock-domain crossing (CDC) adds per-hop latency via
  ``extra_hop_latency`` (2 cycles per crossing pair, Table IV).

The measured quantity is the mean request round-trip — the "average
packet delay of coherence and memory traffic" the paper reports — which
:mod:`repro.fullsys.speedup` converts into execution-time speedups.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from ..sim.network import NetworkSimulator
from ..sim.packet import CONTROL_FLITS, DATA_FLITS, Packet
from ..sim.traffic import TrafficPattern

#: Service latency (ns) at the destination before the reply; wall-clock
#: quantities so the NoI clock class does not distort directory/DRAM time.
DIRECTORY_LATENCY_NS = 4.0
MEMORY_LATENCY_NS = 14.0
#: CDC + NoC traversal charged per NoI hop pair in full-system mode.
CDC_LATENCY = 2


def validate_closed_loop(
    n: int,
    demand_rate: float,
    memory_fraction: float,
    mc_routers: Sequence[int],
    mlp_per_node: int,
) -> None:
    """Reject closed-loop configurations that would crash or mis-draw.

    Shared by both closed-loop engines so they fail identically.  The
    memory-target draw picks uniformly from ``mc_routers`` minus the
    source, so every router must be left with at least one candidate —
    an empty MC list (or a single MC drawing its own traffic) used to
    surface as an opaque ``integers(0)`` crash mid-simulation.
    """
    if not 0.0 <= demand_rate < 1.0:
        raise ValueError(
            f"demand_rate must be in [0, 1) — one Bernoulli request "
            f"trial per router per cycle — got {demand_rate!r}"
        )
    if not 0.0 <= memory_fraction <= 1.0:
        raise ValueError(
            f"memory_fraction must be in [0, 1], got {memory_fraction!r}"
        )
    if mlp_per_node < 1:
        raise ValueError(
            f"mlp_per_node must be >= 1, got {mlp_per_node!r}"
        )
    mcs = list(mc_routers)
    if not mcs:
        raise ValueError(
            "mc_routers is empty: closed-loop traffic needs at least one "
            "memory-controller router (pass mc_routers=... or use a "
            "layout with MC columns)"
        )
    bad = sorted({m for m in mcs if not 0 <= m < n})
    if bad:
        raise ValueError(
            f"mc_routers {bad} outside [0, {n}) for this {n}-router network"
        )
    if memory_fraction > 0 and len(set(mcs)) == 1:
        raise ValueError(
            f"mc_routers contains only router {mcs[0]}: that router has "
            f"no memory target to send to (memory_fraction="
            f"{memory_fraction}); provide a second MC or set "
            f"memory_fraction=0"
        )


@dataclass
class ClosedLoopStats:
    """Round-trip statistics from one closed-loop run."""

    cycles: int
    completed_requests: int
    rtt_sum: float
    n_nodes: int

    @property
    def avg_round_trip_cycles(self) -> float:
        if self.completed_requests == 0:
            return float("nan")
        return self.rtt_sum / self.completed_requests

    @property
    def request_throughput(self) -> float:
        return self.completed_requests / (self.n_nodes * self.cycles)


class ClosedLoopSimulator(NetworkSimulator):
    """Request/response simulation with bounded outstanding requests."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        demand_rate: float,
        mlp_per_node: int = 8,
        memory_fraction: float = 0.5,
        mc_routers: Optional[List[int]] = None,
        noi_clock_ghz: float = 3.0,
        seed: int = 0,
        **sim_kw,
    ):
        sim_kw.setdefault("extra_hop_latency", CDC_LATENCY)
        super().__init__(table, traffic, injection_rate=0.0, seed=seed, **sim_kw)
        self.demand_rate = float(demand_rate)
        self.mlp = int(mlp_per_node)
        self.memory_fraction = float(memory_fraction)
        self.mc_routers = list(
            mc_routers if mc_routers is not None
            else self.topo.layout.mc_routers()
        )
        validate_closed_loop(
            self.n, self.demand_rate, self.memory_fraction,
            self.mc_routers, self.mlp,
        )
        # service delays are wall-clock; convert to this NoI's cycles
        self.directory_cycles = max(1, int(round(DIRECTORY_LATENCY_NS * noi_clock_ghz)))
        self.memory_cycles = max(1, int(round(MEMORY_LATENCY_NS * noi_clock_ghz)))
        self.outstanding = [0] * self.n
        self.request_birth = {}
        # (ready_cycle, dst_of_reply, src_router_serving, size, req_birth)
        self.pending_replies: List[Tuple[int, int, int, int, int]] = []
        self.completed = 0
        self.rtt_sum = 0.0
        self._measure_rtts = False

    # -- demand-driven request injection -----------------------------------------
    def _generate(self) -> None:
        for node in range(self.n):
            if self.outstanding[node] >= self.mlp:
                continue
            if self.rng.random() >= self.demand_rate:
                continue
            is_mem = self.rng.random() < self.memory_fraction
            if is_mem:
                choices = [m for m in self.mc_routers if m != node]
                dst = choices[int(self.rng.integers(len(choices)))]
            else:
                dst = self.traffic.destination(node, self.rng)
            pkt = Packet(
                pid=self._pid,
                src=node,
                dst=dst,
                size_flits=CONTROL_FLITS,
                birth_cycle=self.cycle,
                vc=self.table.vc(node, dst),
            )
            self._pid += 1
            self.source_q[node].append(pkt)
            self.outstanding[node] += 1
            self.in_flight += 1
            self.request_birth[pkt.pid] = (pkt.birth_cycle, is_mem)

        # release matured replies into their servers' source queues
        while self.pending_replies and self.pending_replies[0][0] <= self.cycle:
            _, dst, server, size, req_birth = heapq.heappop(self.pending_replies)
            pkt = Packet(
                pid=self._pid,
                src=server,
                dst=dst,
                size_flits=size,
                birth_cycle=req_birth,  # RTT measured from request birth
                vc=self.table.vc(server, dst),
                is_data=True,
            )
            self._pid += 1
            self.source_q[server].append(pkt)
            self.in_flight += 1

    def _on_eject(self, pkt: Packet) -> None:
        if not pkt.is_data:
            # request arrived at its home node: schedule the data reply
            meta = self.request_birth.pop(pkt.pid, None)
            birth, is_mem = meta if meta else (pkt.birth_cycle, False)
            service = self.memory_cycles if is_mem else self.directory_cycles
            heapq.heappush(
                self.pending_replies,
                (self.cycle + service, pkt.src, pkt.dst, DATA_FLITS, birth),
            )
        else:
            # reply came home: request complete.  (``_eject`` already
            # decremented ``in_flight`` for the reply packet itself.)
            node = pkt.dst
            self.outstanding[node] = max(0, self.outstanding[node] - 1)
            if self._measure_rtts:
                self.completed += 1
                self.rtt_sum += self.cycle - pkt.birth_cycle

    def run_closed_loop(self, warmup: int, measure: int) -> ClosedLoopStats:
        for _ in range(warmup):
            self.step()
        self._measure_rtts = True
        start = self.cycle
        for _ in range(measure):
            self.step()
        self._measure_rtts = False
        return ClosedLoopStats(
            cycles=measure,
            completed_requests=self.completed,
            rtt_sum=self.rtt_sum,
            n_nodes=self.n,
        )
