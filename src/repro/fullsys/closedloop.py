"""Closed-loop (request/response) network simulation for full-system runs.

Extends the open-loop :class:`~repro.sim.network.NetworkSimulator` with
the structure of the paper's full-system traffic (Table IV):

* each NoI router aggregates a concentration of cores (4 per router; the
  outer columns host memory controllers instead, Fig. 2(b));
* cores issue *requests* (1-flit control packets) to a directory/memory
  target and stall-track them until the *response* (9-flit data) returns;
  per-router outstanding-request budget models the cores' aggregate MLP;
* responses are generated at the destination after a fixed service
  latency (directory lookup / DRAM access);
* the NoC-to-NoI clock-domain crossing (CDC) adds per-hop latency via
  ``extra_hop_latency`` (2 cycles per crossing pair, Table IV).

The measured quantity is the mean request round-trip — the "average
packet delay of coherence and memory traffic" the paper reports — which
:mod:`repro.fullsys.speedup` converts into execution-time speedups.

Fault tolerance
---------------

With a :class:`RetryPolicy`, every request is a *transaction* tracked
from issue to completion or failure:

* ``IN_NET``: a request (or its reply) is traveling, with a timeout
  deadline armed at (re)transmission time;
* ``BACKOFF``: the last attempt timed out (or the packet was dropped by
  a fault-epoch swap, or the flow was unroutable at injection time); the
  transaction waits out a randomized exponential backoff before
  retransmitting.

Backoff delays come from a *dedicated* RNG stream seeded by the policy —
never the packet-draw stream — mirroring the burst gate-chain contract,
so a degraded run's demand draws match the pristine run's bit for bit.
A transaction that exhausts its retry budget counts as failed and frees
its MLP slot; conservation (``issued == completed + failed +
in-flight``) is asserted at the end of every run.  Both engines (this
reference and :class:`~repro.fullsys.fastloop.FastClosedLoopSimulator`)
share the machinery below via :class:`ClosedLoopRetryCore` and stay
bit-identical under fault schedules (``tests/test_closedloop_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..routing.tables import RoutingTable
from ..sim.network import NetworkSimulator
from ..sim.packet import CONTROL_FLITS, DATA_FLITS, Packet
from ..sim.stats import WindowSample
from ..sim.traffic import TrafficPattern
from .config import TABLE4

#: Service latency (ns) at the destination before the reply; wall-clock
#: quantities so the NoI clock class does not distort directory/DRAM time.
DIRECTORY_LATENCY_NS = 4.0
MEMORY_LATENCY_NS = 14.0
#: CDC + NoC traversal charged per NoI hop pair in full-system mode.
CDC_LATENCY = 2

#: Transaction states (``txn`` value index ``_T_STATE``).
_IN_NET = 0
_BACKOFF = 1

#: ``txn`` value layout: [node, dst, is_mem, birth, attempt, state].
_T_NODE, _T_DST, _T_MEM, _T_BIRTH, _T_ATTEMPT, _T_STATE = range(6)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff semantics for closed-loop requests.

    A request whose reply has not returned within ``timeout`` cycles of
    its (re)transmission times out.  Up to ``retries`` retransmissions
    are attempted; attempt ``a`` first waits a uniform random backoff of
    ``1 .. backoff * 2**(a-1)`` cycles drawn from a dedicated RNG stream
    seeded by ``seed`` — never from the packet-draw stream (the same
    isolation contract as the burst gate chain), so retry timing cannot
    perturb demand draws.  A transaction that exhausts the budget counts
    as ``failed_requests`` and releases its MLP slot.
    """

    timeout: int = TABLE4.request_timeout_cycles
    retries: int = TABLE4.request_max_retries
    backoff: int = TABLE4.retry_backoff_cycles
    seed: int = 0

    def __post_init__(self):
        if self.timeout < 1:
            raise ValueError(
                f"retry timeout must be >= 1 cycle, got {self.timeout!r}"
            )
        if self.retries < 0:
            raise ValueError(
                f"retry budget must be >= 0, got {self.retries!r}"
            )
        if self.backoff < 1:
            raise ValueError(
                f"retry backoff base must be >= 1 cycle, got {self.backoff!r}"
            )

    # -- (de)serialization (runner payloads) --------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "timeout": self.timeout,
            "retries": self.retries,
            "backoff": self.backoff,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RetryPolicy":
        return cls(
            timeout=int(d["timeout"]),
            retries=int(d["retries"]),
            backoff=int(d["backoff"]),
            seed=int(d.get("seed", 0)),
        )

    def key(self) -> tuple:
        return (self.timeout, self.retries, self.backoff, self.seed)


def validate_closed_loop_faults(faults, retry) -> None:
    """Reject the one unsupported combination: faults without retries.

    A non-empty :class:`~repro.faults.FaultSchedule` requires a
    :class:`RetryPolicy`: an epoch swap can drop in-flight requests or
    replies, and without timeout/retry semantics those transactions
    would hold their MLP slots forever.  Shared by both engines and the
    runner payload builders/decoders, so the combination fails with the
    same error everywhere — before any simulation runs.
    """
    if faults is None or not getattr(faults, "events", ()):
        return
    if retry is None:
        raise ValueError(
            "closed-loop simulation with a fault schedule requires a "
            "RetryPolicy: an epoch swap can drop in-flight requests or "
            "replies, and without timeout/retry semantics those "
            "transactions would hang forever.  Pass retry=RetryPolicy(...) "
            "(CLI: --timeout/--retries/--backoff) or drop faults=."
        )


def validate_closed_loop(
    n: int,
    demand_rate: float,
    memory_fraction: float,
    mc_routers: Sequence[int],
    mlp_per_node: int,
    faults=None,
    retry: Optional[RetryPolicy] = None,
) -> None:
    """Reject closed-loop configurations that would crash or mis-draw.

    Shared by both closed-loop engines so they fail identically.  The
    memory-target draw picks uniformly from ``mc_routers`` minus the
    source, so every router must be left with at least one candidate —
    an empty MC list (or a single MC drawing its own traffic) used to
    surface as an opaque ``integers(0)`` crash mid-simulation.  The
    ``faults``/``retry`` pair is checked by
    :func:`validate_closed_loop_faults`.
    """
    if not 0.0 <= demand_rate < 1.0:
        raise ValueError(
            f"demand_rate must be in [0, 1) — one Bernoulli request "
            f"trial per router per cycle — got {demand_rate!r}"
        )
    if not 0.0 <= memory_fraction <= 1.0:
        raise ValueError(
            f"memory_fraction must be in [0, 1], got {memory_fraction!r}"
        )
    if mlp_per_node < 1:
        raise ValueError(
            f"mlp_per_node must be >= 1, got {mlp_per_node!r}"
        )
    mcs = list(mc_routers)
    if not mcs:
        raise ValueError(
            "mc_routers is empty: closed-loop traffic needs at least one "
            "memory-controller router (pass mc_routers=... or use a "
            "layout with MC columns)"
        )
    bad = sorted({m for m in mcs if not 0 <= m < n})
    if bad:
        raise ValueError(
            f"mc_routers {bad} outside [0, {n}) for this {n}-router network"
        )
    if memory_fraction > 0 and len(set(mcs)) == 1:
        raise ValueError(
            f"mc_routers contains only router {mcs[0]}: that router has "
            f"no memory target to send to (memory_fraction="
            f"{memory_fraction}); provide a second MC or set "
            f"memory_fraction=0"
        )
    validate_closed_loop_faults(faults, retry)


@dataclass
class ClosedLoopStats:
    """Round-trip statistics from one closed-loop run.

    The retry counters cover the *whole* run (warmup included — failures
    and retries are lifecycle events, not steady-state samples), while
    ``completed_requests``/``rtt_sum`` remain measurement-window
    quantities as before.
    """

    cycles: int
    completed_requests: int
    rtt_sum: float
    n_nodes: int
    issued_requests: int = 0
    failed_requests: int = 0
    retried_requests: int = 0
    in_flight_requests: int = 0

    @property
    def avg_round_trip_cycles(self) -> float:
        if self.completed_requests == 0:
            return float("nan")
        return self.rtt_sum / self.completed_requests

    @property
    def request_throughput(self) -> float:
        return self.completed_requests / (self.n_nodes * self.cycles)

    @property
    def failed_fraction(self) -> float:
        """Failed transactions as a fraction of all issued ones."""
        if self.issued_requests == 0:
            return 0.0
        return self.failed_requests / self.issued_requests


class ClosedLoopRetryCore:
    """Transaction machinery shared by both closed-loop engines.

    The engines differ only in how they move packets; everything about a
    transaction's lifecycle — issue, timeout, backoff, retransmission,
    failure, completion, conservation — lives here so it cannot drift
    between them.  Subclasses provide:

    * ``_unroutable(node, dst)`` — can the *current* epoch's table route
      the flow?
    * ``_run_span(ncycles)`` — advance the underlying engine.

    State: ``txn`` maps a transaction id to the mutable record
    ``[node, dst, is_mem, birth, attempt, state]``; ``_deadline_q`` is a
    heap of ``(deadline, tid, attempt)`` (entries whose attempt no
    longer matches are stale and skipped — completion and retransmission
    cancel deadlines lazily); ``_retry_q`` is a heap of ``(ready, tid)``
    backoff releases.  Timeout scans, retransmission releases, drop
    processing, and backoff draws all happen in deterministic (heap /
    sorted-tid) order, so the dedicated retry RNG stream advances
    identically in both engines.
    """

    def _init_closed_state(self, retry: Optional[RetryPolicy]) -> None:
        self.retry = retry
        self._retry_rng = (
            np.random.default_rng(retry.seed) if retry is not None else None
        )
        self.txn: Dict[int, list] = {}
        self._tid = 0
        self._deadline_q: List[Tuple[int, int, int]] = []
        self._retry_q: List[Tuple[int, int]] = []
        self.issued = 0
        self.completed_total = 0
        self.failed = 0
        self.retried = 0
        self.outstanding = [0] * self.n
        # Reference-ordered reply heap: (ready, requester, server, size,
        # request_birth, tid) — identical tuples in both engines, so
        # same-cycle releases pop identically.
        self.pending_replies: List[Tuple[int, int, int, int, int, int]] = []
        self.completed = 0
        self.rtt_sum = 0.0
        self._measure_rtts = False

    # -- lifecycle ----------------------------------------------------------
    def _timeout_txn(self, tid: int, t: list, cycle: int) -> None:
        """Attempt ``t`` is gone (timeout, epoch drop, or unroutable):
        either fail the transaction or park it in backoff."""
        retry = self.retry
        if retry is None or t[_T_ATTEMPT] >= retry.retries:
            del self.txn[tid]
            node = t[_T_NODE]
            o = self.outstanding[node] - 1
            self.outstanding[node] = o if o > 0 else 0
            self.failed += 1
            return
        t[_T_ATTEMPT] += 1
        t[_T_STATE] = _BACKOFF
        self.retried += 1
        u = self._retry_rng.random()
        delay = 1 + int(u * retry.backoff * (1 << (t[_T_ATTEMPT] - 1)))
        heappush(self._retry_q, (cycle + delay, tid))

    def _defer_new(self, tid: int, cycle: int) -> None:
        """A freshly issued request whose flow the degraded fabric cannot
        route: park it in backoff *without* burning a retry attempt (it
        was never injected), drawing the delay from the same dedicated
        stream."""
        self.txn[tid][_T_STATE] = _BACKOFF
        u = self._retry_rng.random()
        delay = 1 + int(u * self.retry.backoff)
        heappush(self._retry_q, (cycle + delay, tid))

    def _retry_tick(self, cycle: int) -> List[Tuple[int, int, int]]:
        """Run one cycle's timeout scan and backoff releases.

        Returns the ``(tid, node, dst)`` retransmissions to inject this
        cycle, in deterministic heap order, with their new deadlines
        already armed.  A release whose flow is (still) unroutable burns
        an attempt and re-enters backoff — under a transient fault the
        transaction survives to retry after recovery; under a permanent
        one it converges to failure.
        """
        txn = self.txn
        dq = self._deadline_q
        while dq and dq[0][0] <= cycle:
            _, tid, attempt = heappop(dq)
            t = txn.get(tid)
            if t is None or t[_T_ATTEMPT] != attempt or t[_T_STATE] != _IN_NET:
                continue  # stale deadline: completed, failed, or retried
            self._timeout_txn(tid, t, cycle)
        out: List[Tuple[int, int, int]] = []
        rq = self._retry_q
        retry = self.retry
        while rq and rq[0][0] <= cycle:
            _, tid = heappop(rq)
            t = txn.get(tid)
            if t is None:
                continue  # completed while in backoff (late reply)
            node, dst = t[_T_NODE], t[_T_DST]
            if self._unroutable(node, dst):
                self._timeout_txn(tid, t, cycle)
                continue
            t[_T_STATE] = _IN_NET
            heappush(dq, (cycle + retry.timeout, tid, t[_T_ATTEMPT]))
            out.append((tid, node, dst))
        return out

    def _fail_or_retry_dropped(self, tids, cycle: int) -> None:
        """Route transactions whose packet a fault-epoch swap dropped
        into the retry path.  Processing in ascending-tid order decouples
        the retry RNG stream from the engines' queue-walk order."""
        txn = self.txn
        for tid in sorted(set(tids)):
            t = txn.get(tid)
            if t is None or t[_T_STATE] != _IN_NET:
                continue  # already in backoff (only a stale packet died)
            self._timeout_txn(tid, t, cycle)

    # -- invariants and results ---------------------------------------------
    def _check_conservation(self) -> None:
        """``issued == completed + failed + in-flight`` and every live
        transaction holds exactly one MLP slot."""
        live = len(self.txn)
        held = sum(self.outstanding)
        if (
            self.issued != self.completed_total + self.failed + live
            or held != live
        ):
            raise RuntimeError(
                f"closed-loop request conservation violated: "
                f"issued={self.issued} != completed={self.completed_total} "
                f"+ failed={self.failed} + in-flight={live} "
                f"(MLP slots held: {held})"
            )

    def _closed_stats(self, measure: int) -> ClosedLoopStats:
        return ClosedLoopStats(
            cycles=measure,
            completed_requests=self.completed,
            rtt_sum=self.rtt_sum,
            n_nodes=self.n,
            issued_requests=self.issued,
            failed_requests=self.failed,
            retried_requests=self.retried,
            in_flight_requests=len(self.txn),
        )

    def _run_span(self, ncycles: int) -> None:
        raise NotImplementedError

    def _unroutable(self, node: int, dst: int) -> bool:
        raise NotImplementedError

    # -- public API ---------------------------------------------------------
    def run_closed_loop(self, warmup: int, measure: int) -> ClosedLoopStats:
        self._run_span(warmup)
        self._measure_rtts = True
        self._run_span(measure)
        self._measure_rtts = False
        self._check_conservation()
        return self._closed_stats(measure)

    def run_windows(self, total: int, window: int) -> List[WindowSample]:
        """Advance ``total`` cycles, sampling cumulative counters every
        ``window`` cycles — the input to
        :func:`repro.sim.stats.recovery_metrics`.  RTT measurement is on
        for the whole span (transient windows are the point)."""
        if window < 1:
            raise ValueError(f"window must be >= 1 cycle, got {window!r}")
        samples: List[WindowSample] = []
        self._measure_rtts = True
        done = 0
        while done < total:
            w = min(window, total - done)
            start = self.cycle
            i0 = self.issued
            c0 = self.completed
            f0 = self.failed
            r0 = self.retried
            rtt0 = self.rtt_sum
            self._run_span(w)
            done += w
            samples.append(WindowSample(
                start=start,
                end=self.cycle,
                issued=self.issued - i0,
                completed=self.completed - c0,
                failed=self.failed - f0,
                retried=self.retried - r0,
                rtt_sum=self.rtt_sum - rtt0,
                backlog=sum(self.outstanding),
                net_in_flight=self.in_flight,
            ))
        self._measure_rtts = False
        self._check_conservation()
        return samples


class ClosedLoopSimulator(ClosedLoopRetryCore, NetworkSimulator):
    """Request/response simulation with bounded outstanding requests."""

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        demand_rate: float,
        mlp_per_node: int = 8,
        memory_fraction: float = 0.5,
        mc_routers: Optional[List[int]] = None,
        noi_clock_ghz: float = 3.0,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        **sim_kw,
    ):
        sim_kw.setdefault("extra_hop_latency", CDC_LATENCY)
        faults = sim_kw.get("faults")
        super().__init__(table, traffic, injection_rate=0.0, seed=seed, **sim_kw)
        self.demand_rate = float(demand_rate)
        self.mlp = int(mlp_per_node)
        self.memory_fraction = float(memory_fraction)
        self.mc_routers = list(
            mc_routers if mc_routers is not None
            else self.topo.layout.mc_routers()
        )
        validate_closed_loop(
            self.n, self.demand_rate, self.memory_fraction,
            self.mc_routers, self.mlp, faults=faults, retry=retry,
        )
        # service delays are wall-clock; convert to this NoI's cycles
        self.directory_cycles = max(1, int(round(DIRECTORY_LATENCY_NS * noi_clock_ghz)))
        self.memory_cycles = max(1, int(round(MEMORY_LATENCY_NS * noi_clock_ghz)))
        self._init_closed_state(retry)

    # -- engine adapters ----------------------------------------------------
    def _unroutable(self, node: int, dst: int) -> bool:
        return (node, dst) not in self.table.flow_vc

    def _run_span(self, ncycles: int) -> None:
        for _ in range(ncycles):
            self.step()

    def _send_request(self, node: int, dst: int, tid: int) -> None:
        """Inject one request (or retransmission) for transaction ``tid``."""
        pkt = Packet(
            pid=self._pid,
            src=node,
            dst=dst,
            size_flits=CONTROL_FLITS,
            birth_cycle=self.txn[tid][_T_BIRTH],
            vc=self.table.vc(node, dst),
            tid=tid,
        )
        self._pid += 1
        self.source_q[node].append(pkt)
        self.in_flight += 1

    # -- demand-driven request injection ------------------------------------
    def _generate(self) -> None:
        cycle = self.cycle
        retry = self.retry
        if retry is not None:
            # Timeouts, then backoff releases: retransmissions enter a
            # node's source queue ahead of its same-cycle fresh demand.
            for tid, node, dst in self._retry_tick(cycle):
                self._send_request(node, dst, tid)
        faulty = self._faulty
        for node in range(self.n):
            if self.outstanding[node] >= self.mlp:
                continue
            if self.rng.random() >= self.demand_rate:
                continue
            is_mem = self.rng.random() < self.memory_fraction
            if is_mem:
                choices = [m for m in self.mc_routers if m != node]
                dst = choices[int(self.rng.integers(len(choices)))]
            else:
                dst = self.traffic.destination(node, self.rng)
            tid = self._tid
            self._tid += 1
            self.txn[tid] = [node, dst, 1 if is_mem else 0, cycle, 0, _IN_NET]
            self.issued += 1
            self.outstanding[node] += 1
            if faulty and self._unroutable(node, dst):
                # The degraded table cannot carry the flow (dead source,
                # dead target, or partition): all draws were made, so the
                # packet-RNG stream matches a pristine run, but the
                # request defers into backoff instead of injecting.
                self._defer_new(tid, cycle)
                continue
            self._send_request(node, dst, tid)
            if retry is not None:
                heappush(self._deadline_q, (cycle + retry.timeout, tid, 0))

        # release matured replies into their servers' source queues
        while self.pending_replies and self.pending_replies[0][0] <= cycle:
            _, rdst, server, size, req_birth, tid = heappop(self.pending_replies)
            if faulty and self._unroutable(server, rdst):
                # The server (or the path home) died while serving: the
                # reply cannot be sent — time the attempt out.
                t = self.txn.get(tid)
                if t is not None and t[_T_STATE] == _IN_NET:
                    self._timeout_txn(tid, t, cycle)
                continue
            pkt = Packet(
                pid=self._pid,
                src=server,
                dst=rdst,
                size_flits=size,
                birth_cycle=req_birth,  # RTT measured from request birth
                vc=self.table.vc(server, rdst),
                is_data=True,
                tid=tid,
            )
            self._pid += 1
            self.source_q[server].append(pkt)
            self.in_flight += 1

    def _on_eject(self, pkt: Packet) -> None:
        if not pkt.is_data:
            # request arrived at its home node: schedule the data reply.
            # (A stale retransmission artifact — its transaction already
            # failed, completed, or re-entered backoff — generates none.)
            t = self.txn.get(pkt.tid)
            if t is None or t[_T_STATE] != _IN_NET:
                return
            service = self.memory_cycles if t[_T_MEM] else self.directory_cycles
            heappush(
                self.pending_replies,
                (
                    self.cycle + service,
                    t[_T_NODE],  # requester (pkt.src is re-keyed by epochs)
                    pkt.dst,
                    DATA_FLITS,
                    t[_T_BIRTH],
                    pkt.tid,
                ),
            )
        else:
            # reply came home: request complete.  (``_eject`` already
            # decremented ``in_flight`` for the reply packet itself.)
            t = self.txn.pop(pkt.tid, None)
            if t is None:
                return  # duplicate reply of an already-retired transaction
            node = pkt.dst
            self.outstanding[node] = max(0, self.outstanding[node] - 1)
            self.completed_total += 1
            if self._measure_rtts:
                self.completed += 1
                self.rtt_sum += self.cycle - pkt.birth_cycle

    # -- fault epochs --------------------------------------------------------
    def _apply_epoch(self, epoch) -> None:
        """Epoch swap + drop recovery: packets the new network cannot
        carry route their transactions into the retry path instead of
        being silently lost."""
        log: List[Packet] = []
        self._drop_log = log
        try:
            super()._apply_epoch(epoch)
        finally:
            self._drop_log = None
        if log:
            self._fail_or_retry_dropped((pkt.tid for pkt in log), self.cycle)
