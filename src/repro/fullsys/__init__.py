"""Full-system model: PARSEC profiles, closed-loop request/response
simulation, and the execution-time speedup analysis of Fig. 8."""

from .closedloop import (
    CDC_LATENCY,
    DIRECTORY_LATENCY_NS,
    MEMORY_LATENCY_NS,
    ClosedLoopSimulator,
    ClosedLoopStats,
    RetryPolicy,
    validate_closed_loop,
    validate_closed_loop_faults,
)
from .fastloop import (
    CLOSED_ENGINES,
    FastClosedLoopSimulator,
    resolve_closed_loop_engine,
)
from .speedup import (
    CORE_CLOCK_GHZ,
    Figure8Row,
    WorkloadResult,
    demand_rate_for,
    geomean_speedups,
    parsec_sweep,
    run_workload,
)
from .workloads import BY_NAME, PARSEC, WorkloadProfile, workload

__all__ = [
    "ClosedLoopSimulator",
    "FastClosedLoopSimulator",
    "CLOSED_ENGINES",
    "resolve_closed_loop_engine",
    "validate_closed_loop",
    "validate_closed_loop_faults",
    "RetryPolicy",
    "ClosedLoopStats",
    "DIRECTORY_LATENCY_NS",
    "MEMORY_LATENCY_NS",
    "CDC_LATENCY",
    "WorkloadProfile",
    "PARSEC",
    "BY_NAME",
    "workload",
    "WorkloadResult",
    "Figure8Row",
    "run_workload",
    "parsec_sweep",
    "geomean_speedups",
    "demand_rate_for",
    "CORE_CLOCK_GHZ",
]
