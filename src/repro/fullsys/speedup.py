"""Execution-time model: network latency -> PARSEC speedup (Fig. 8).

The paper's causal chain is: better topology -> lower packet latency for
coherence and memory traffic -> fewer core stall cycles -> execution-time
speedup, with per-benchmark sensitivity set by L2 misses per instruction.
We model exactly that chain:

``CPI = base_cpi + (l2_mpki / 1000) * miss_latency_core_cycles / mlp``

where ``miss_latency_core_cycles`` is the measured NoI round-trip (NoI
cycles, from the closed-loop simulation) converted through the NoI and
core clocks (Table IV: cores at 3.8 GHz; NoI at its link-class clock),
and ``mlp`` divides the exposed latency by the core's overlap factor.

Speedups are reported relative to the mesh baseline, as in Fig. 8, along
with the packet-latency reduction (Fig. 8's right axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..routing.tables import RoutingTable
from ..sim.fastnet import DEFAULT_ENGINE
from ..sim.traffic import uniform_random
from ..topology.layout import CLASS_CLOCK_GHZ
from .closedloop import ClosedLoopSimulator, ClosedLoopStats
from .fastloop import resolve_closed_loop_engine
from .workloads import PARSEC, WorkloadProfile

if TYPE_CHECKING:
    from ..runner import Runner

CORE_CLOCK_GHZ = 3.8  # Table IV


@dataclass
class WorkloadResult:
    """Fig. 8 quantities for one (benchmark, topology) pair."""

    workload: str
    topology: str
    avg_packet_latency_ns: float
    cpi: float

    def speedup_over(self, baseline: "WorkloadResult") -> float:
        return baseline.cpi / self.cpi

    def latency_reduction_over(self, baseline: "WorkloadResult") -> float:
        return 1.0 - self.avg_packet_latency_ns / baseline.avg_packet_latency_ns


def demand_rate_for(workload: WorkloadProfile, cores_per_router: float = 3.2) -> float:
    """Per-NoI-router request probability per NoI cycle.

    Each core issues ``l2_mpki/1000`` misses per instruction at roughly
    ``1/base_cpi`` instructions per core cycle; a router aggregates its
    concentration of cores, and NoI cycles are shorter than core cycles.
    Clamped to keep the closed loop stable at the high-MPKI end.
    """
    per_core_per_core_cycle = (workload.l2_mpki / 1000.0) / workload.base_cpi
    rate = per_core_per_core_cycle * cores_per_router
    return float(min(rate * CORE_CLOCK_GHZ / 3.0, 0.45))


def _build_closed_loop(
    table: RoutingTable,
    workload: WorkloadProfile,
    link_class: Optional[str],
    seed: int,
    engine: str,
    faults=None,
    retry=None,
):
    """One closed-loop simulator for a (workload, topology) pair, plus
    the NoI clock its latencies convert through."""
    topo = table.topology
    cls = link_class or topo.link_class or "small"
    clock = CLASS_CLOCK_GHZ[cls]
    sim = resolve_closed_loop_engine(engine)(
        table,
        uniform_random(topo.n),
        demand_rate=demand_rate_for(workload),
        mlp_per_node=int(round(workload.mlp * 3.2)),
        memory_fraction=workload.memory_fraction,
        noi_clock_ghz=clock,
        seed=seed,
        faults=faults,
        retry=retry,
    )
    return sim, clock


def run_workload(
    table: RoutingTable,
    workload: WorkloadProfile,
    link_class: Optional[str] = None,
    warmup: int = 600,
    measure: int = 2500,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
    faults=None,
    retry=None,
) -> WorkloadResult:
    """Closed-loop simulation of one benchmark on one routed topology.

    ``engine`` picks the closed-loop simulator implementation (the
    ``"fast"`` flat-array engine, the default, or the ``"reference"``
    oracle); both produce identical results for identical inputs.
    ``faults`` degrades the run with a
    :class:`~repro.faults.FaultSchedule` (which requires ``retry``, a
    :class:`~repro.fullsys.closedloop.RetryPolicy`, so in-flight
    requests survive epoch swaps).
    """
    topo = table.topology
    sim, clock = _build_closed_loop(
        table, workload, link_class, seed, engine, faults=faults, retry=retry,
    )
    stats = sim.run_closed_loop(warmup, measure)
    rtt_noi_cycles = stats.avg_round_trip_cycles
    rtt_ns = rtt_noi_cycles / clock
    miss_core_cycles = rtt_ns * CORE_CLOCK_GHZ
    cpi = workload.base_cpi + (
        workload.l2_mpki / 1000.0
    ) * miss_core_cycles / workload.mlp
    return WorkloadResult(
        workload=workload.name,
        topology=topo.name,
        avg_packet_latency_ns=rtt_ns,
        cpi=float(cpi),
    )


def run_recovery_windows(
    table: RoutingTable,
    workload: WorkloadProfile,
    link_class: Optional[str] = None,
    total: int = 1400,
    window: int = 50,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
    faults=None,
    retry=None,
):
    """Windowed closed-loop run for transient-recovery measurement.

    Returns the :class:`~repro.sim.stats.WindowSample` list covering
    ``total`` cycles in ``window``-cycle slices — the raw material for
    :func:`~repro.sim.stats.recovery_metrics` (computed caller-side, so
    tolerance knobs never enter the cache key).
    """
    sim, _clock = _build_closed_loop(
        table, workload, link_class, seed, engine, faults=faults, retry=retry,
    )
    return sim.run_windows(total, window)


@dataclass
class Figure8Row:
    """One benchmark's Fig. 8 bar group (speedups vs mesh per topology)."""

    workload: str
    speedups: Dict[str, float]
    latency_reductions: Dict[str, float]


def parsec_sweep(
    tables: Dict[str, RoutingTable],
    mesh_table: RoutingTable,
    workloads: Optional[List[WorkloadProfile]] = None,
    seed: int = 0,
    warmup: int = 600,
    measure: int = 2500,
    runner: Optional["Runner"] = None,
    engine: Optional[str] = None,
) -> List[Figure8Row]:
    """Fig. 8: per-benchmark speedup and latency reduction vs mesh.

    Every (benchmark, topology) pair is one independent closed-loop
    simulation.  With a :class:`~repro.runner.Runner` they all fan out
    as ``closed_loop`` tasks — parallel across workers, content-hash
    cached on disk — and reassemble positionally, so the rows are
    bit-identical to the serial loop at any worker count.  ``engine``
    pins the closed-loop engine; ``None`` uses the runner's default
    (or the fast engine serially).
    """
    workloads = workloads or PARSEC
    names = list(tables)
    rows: List[Figure8Row] = []
    if runner is not None:
        from ..runner.orchestrator import ClosedLoopJob

        jobs = [
            ClosedLoopJob(
                table=tab, workload=w, warmup=warmup, measure=measure,
                seed=seed, engine=engine,
            )
            for w in workloads
            for tab in [mesh_table] + [tables[n] for n in names]
        ]
        results = iter(runner.closed_loops(jobs))
        for w in workloads:
            base = next(results)
            speed = {}
            red = {}
            for name in names:
                r = next(results)
                speed[name] = r.speedup_over(base)
                red[name] = r.latency_reduction_over(base)
            rows.append(
                Figure8Row(workload=w.name, speedups=speed, latency_reductions=red)
            )
        return rows
    engine = engine or DEFAULT_ENGINE
    for w in workloads:
        base = run_workload(
            mesh_table, w, seed=seed, warmup=warmup, measure=measure,
            engine=engine,
        )
        speed: Dict[str, float] = {}
        red: Dict[str, float] = {}
        for name, tab in tables.items():
            r = run_workload(
                tab, w, seed=seed, warmup=warmup, measure=measure,
                engine=engine,
            )
            speed[name] = r.speedup_over(base)
            red[name] = r.latency_reduction_over(base)
        rows.append(Figure8Row(workload=w.name, speedups=speed, latency_reductions=red))
    return rows


def geomean_speedups(rows: List[Figure8Row]) -> Dict[str, float]:
    """Fig. 8's GEOMEAN group."""
    if not rows:
        return {}
    names = rows[0].speedups.keys()
    return {
        n: float(np.exp(np.mean([np.log(r.speedups[n]) for r in rows])))
        for n in names
    }
