"""Flat-array fast engine for closed-loop (request/response) simulation.

:class:`FastClosedLoopSimulator` is to :class:`~repro.fullsys.closedloop.
ClosedLoopSimulator` what :class:`~repro.sim.fastnet.FastNetworkSimulator`
is to the reference open-loop engine: identical cycle-level semantics,
identical RNG draw order, bit-identical :class:`~repro.fullsys.closedloop.
ClosedLoopStats` (pinned by the differential suites in
``tests/test_fastloop.py`` and ``tests/test_closedloop_faults.py``) —
built on the same compiled-network flat arrays and worklist/sleep
arbitration machinery.

Closed-loop traffic cannot be trace-fed: whether a router draws at all
on a given cycle depends on its outstanding-request count, which depends
on every earlier arbitration decision.  The injection stream is instead
generated cycle-by-cycle through two narrow hooks the fast engine's
fused loop exposes:

* ``_closed_gen`` replaces the generation block with the retry tick
  (timeout scan, backoff releases, retransmissions) followed by
  demand-driven request injection (per-router MLP budget,
  memory-vs-directory target split, destination draws) and the release
  of matured replies from a service-latency heap;
* ``_closed_eject`` observes every ejection: a live request schedules
  its data reply after the directory/memory service latency; a returning
  reply retires the transaction, releases the router's MLP slot, and
  accounts the round trip.

The reference engine's draws are scalar ``Generator`` calls —
``random()`` per demand/memory-fraction decision, ``integers(k)`` per
target pick.  For every built-in traffic pattern (anything carrying a
:class:`~repro.sim.traffic.DestSpec`) this engine replays that exact
stream from buffered **raw 64-bit PCG64 words** (:mod:`repro.sim.
rngstream`): doubles are ``(word >> 11) * 2**-53``, bounded draws are
Lemire-32 over the half-word stream with the bit generator's
``has_uint32`` cache tracked arithmetically — plain Python integer ops
instead of per-draw Generator dispatch.  Spec-less custom patterns fall
back to real Generator calls (still bit-identical, just slower).
Backoff delays come from the policy's *dedicated* RNG
(:class:`~repro.fullsys.closedloop.RetryPolicy`), so the retry machinery
never perturbs the replayed packet-draw stream.

Packets ride the fast engine's 6-tuple records; the closed-loop
metadata lives in the birth field.  Requests encode
``tid << 33 | birth << 1 | is_mem`` and replies ``tid << 32 | birth``
(birth cycles fit 32 bits by a huge margin) — the transaction id is
what survives fault-epoch swaps, timeout retransmissions, and stale
duplicates, while the record's flit size distinguishes the two classes
(requests are 1-flit control, replies 9-flit data).  Reply-heap tuples
are ordered exactly as the reference's, so same-cycle releases pop in
the same order.  Fault epochs run through the open-loop engine's
``_advance`` segmentation; the ``_apply_epoch`` override collects the
canonical walk's dropped records and feeds their transactions to the
shared retry path in sorted-tid order.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional

from ..routing.tables import RoutingTable
from ..sim.fastnet import CompiledNetwork, FastNetworkSimulator
from ..sim.packet import CONTROL_FLITS, DATA_FLITS
from ..sim.rngstream import DOUBLE_SCALE, take_raw
from ..sim.traffic import TrafficPattern
from .closedloop import (
    _IN_NET,
    _T_BIRTH,
    _T_MEM,
    _T_NODE,
    CDC_LATENCY,
    DIRECTORY_LATENCY_NS,
    MEMORY_LATENCY_NS,
    ClosedLoopRetryCore,
    ClosedLoopSimulator,
    ClosedLoopStats,
    RetryPolicy,
    validate_closed_loop,
)

#: DestSpec kinds compiled to integer tags for the generation hot loop.
_KIND = {"table": 0, "uniform": 1, "memory": 2, "hotspot": 3}

#: Raw words pulled from the Generator per buffer refill.
_WORD_CHUNK = 4096

_U32 = 0xFFFFFFFF


class FastClosedLoopSimulator(ClosedLoopRetryCore, FastNetworkSimulator):
    """Flat-array drop-in for :class:`ClosedLoopSimulator` (same stats)."""

    #: Construction validates that any fault schedule comes with a
    #: RetryPolicy, so the fused loop's epoch segmentation is safe here.
    _closed_faults = True

    def __init__(
        self,
        table: RoutingTable,
        traffic: TrafficPattern,
        demand_rate: float,
        mlp_per_node: int = 8,
        memory_fraction: float = 0.5,
        mc_routers: Optional[List[int]] = None,
        noi_clock_ghz: float = 3.0,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        compiled: Optional[CompiledNetwork] = None,
        **sim_kw,
    ):
        sim_kw.setdefault("extra_hop_latency", CDC_LATENCY)
        faults = sim_kw.get("faults")
        super().__init__(
            table, traffic, injection_rate=0.0, seed=seed,
            compiled=compiled, **sim_kw,
        )
        self.demand_rate = float(demand_rate)
        self.mlp = int(mlp_per_node)
        self.memory_fraction = float(memory_fraction)
        self.mc_routers = list(
            mc_routers if mc_routers is not None
            else self.topo.layout.mc_routers()
        )
        validate_closed_loop(
            self.n, self.demand_rate, self.memory_fraction,
            self.mc_routers, self.mlp, faults=faults, retry=retry,
        )
        self.directory_cycles = max(
            1, int(round(DIRECTORY_LATENCY_NS * noi_clock_ghz))
        )
        self.memory_cycles = max(
            1, int(round(MEMORY_LATENCY_NS * noi_clock_ghz))
        )
        self._init_closed_state(retry)

        n = self.n
        # Per-source memory-target rows (the reference rebuilds
        # ``[m for m in mc_routers if m != node]`` per draw; the rows are
        # deterministic, so compile them once) + Lemire thresholds.
        self._mc_rows = [
            tuple(m for m in self.mc_routers if m != node)
            for node in range(n)
        ]
        self._mc_bounds = [len(r) for r in self._mc_rows]
        self._mc_thresh = [
            (1 << 32) % b if b >= 2 else 0 for b in self._mc_bounds
        ]

        # Raw-word draw stream (emulated scalar Generator calls).
        self._words: List[int] = []
        self._wpos = 0
        self._whas = 0  # pending high half-word (has_uint32 emulation)
        self._wval = 0

        spec = traffic.dest_spec
        if spec is None:
            # Custom pattern: real Generator calls, same draw order.
            self._closed_gen = self._generate_fallback
        else:
            self._kind = _KIND[spec.kind]
            self._dtable = (
                spec.table.tolist() if spec.table is not None else None
            )
            self._dbounds = (
                spec.bounds.tolist() if spec.bounds is not None else None
            )
            self._dthresh = (
                [(1 << 32) % b if b >= 2 else 0 for b in self._dbounds]
                if self._dbounds is not None else None
            )
            self._uni_thresh = (1 << 32) % (n - 1) if n - 1 >= 2 else 0
            self._hot_fraction = spec.hot_fraction
            self._closed_gen = self._generate_emulated
        self._closed_eject = self._eject_closed

    # -- engine adapters -------------------------------------------------------
    def _unroutable(self, node: int, dst: int) -> bool:
        return not self.flow_ok[node * self.n + dst]

    def _run_span(self, ncycles: int) -> None:
        self._advance(ncycles)

    def _retransmit(self, cycle, pending, in_flight, pid):
        """Inject this cycle's backoff releases (cold path: only entered
        when the retry heaps have matured entries)."""
        txn = self.txn
        source_q = self.source_q
        vc_of = self.vc_of
        inj_key = self.inj_key
        n = self.n
        for tid, node, dst in self._retry_tick(cycle):
            t = txn[tid]
            f = node * n + dst
            source_q[node].append((
                vc_of[f], inj_key[f], CONTROL_FLITS, dst,
                (tid << 33) | (t[_T_BIRTH] << 1) | t[_T_MEM],
            ))
            pending |= 1 << node
            in_flight += 1
            pid += 1
        return pending, in_flight, pid

    # -- generation hooks ------------------------------------------------------
    def _generate_emulated(self, cycle, pending, in_flight, pid):
        """Demand-driven injection, draws replayed from raw PCG64 words.

        The retry tick runs first (retransmissions precede a node's
        same-cycle fresh demand — the reference's ``_generate`` order),
        then per eligible router, in ascending index order: one demand
        double; on a win one memory-fraction double, then either a
        bounded draw over the router's MC row or the pattern's
        destination recipe.  Matured replies release afterwards, exactly
        as the reference orders it.
        """
        retry = self.retry
        if retry is not None and (
            (self._deadline_q and self._deadline_q[0][0] <= cycle)
            or (self._retry_q and self._retry_q[0][0] <= cycle)
        ):
            pending, in_flight, pid = self._retransmit(
                cycle, pending, in_flight, pid
            )
        words = self._words
        wlen = len(words)
        pos = self._wpos
        h = self._whas
        hv = self._wval
        rng = self.rng
        outstanding = self.outstanding
        mlp = self.mlp
        demand = self.demand_rate
        memf = self.memory_fraction
        source_q = self.source_q
        vc_of = self.vc_of
        inj_key = self.inj_key
        n = self.n
        mc_rows = self._mc_rows
        mc_bounds = self._mc_bounds
        mc_thresh = self._mc_thresh
        kind = self._kind
        dtable = self._dtable
        dbounds = self._dbounds
        dthresh = self._dthresh
        uni_bound = n - 1
        uni_thresh = self._uni_thresh
        scale = DOUBLE_SCALE
        req_size = CONTROL_FLITS
        txn = self.txn
        tid_c = self._tid
        issued = self.issued
        faulty = self._faulty
        flow_ok = self.flow_ok
        dq = self._deadline_q
        timeout = retry.timeout if retry is not None else 0

        for node in range(n):
            if outstanding[node] >= mlp:
                continue
            if pos == wlen:
                words = take_raw(rng, _WORD_CHUNK).tolist()
                wlen = _WORD_CHUNK
                pos = 0
            w = words[pos]
            pos += 1
            if (w >> 11) * scale >= demand:
                continue
            if pos == wlen:
                words = take_raw(rng, _WORD_CHUNK).tolist()
                wlen = _WORD_CHUNK
                pos = 0
            w = words[pos]
            pos += 1
            row = None
            b = -1  # -1: destination already resolved (no bounded draw)
            if (w >> 11) * scale < memf:
                is_mem = 1
                b = mc_bounds[node]
                t = mc_thresh[node]
                row = mc_rows[node]
            else:
                is_mem = 0
                if kind == 0:  # deterministic permutation
                    dst = dtable[node]
                elif kind == 1:  # uniform over others
                    b = uni_bound
                    t = uni_thresh
                elif kind == 2:  # memory pattern rows
                    b = dbounds[node]
                    t = dthresh[node]
                    row = dtable[node]
                else:  # hotspot: hot/uniform decision double first
                    if pos == wlen:
                        words = take_raw(rng, _WORD_CHUNK).tolist()
                        wlen = _WORD_CHUNK
                        pos = 0
                    w = words[pos]
                    pos += 1
                    hb = dbounds[node]
                    if (w >> 11) * scale < self._hot_fraction and hb > 0:
                        b = hb
                        t = dthresh[node]
                        row = dtable[node]
                    else:
                        b = uni_bound
                        t = uni_thresh
            if b >= 0:
                if b == 0:
                    raise ValueError(
                        f"destination draw with empty candidate set at "
                        f"router {node} — degenerate traffic pattern"
                    )
                if b == 1:
                    # numpy's ``integers(1)``: 0, consuming nothing.
                    val = 0
                else:
                    # Lemire-32 over the half-word stream (low half of a
                    # fresh word first, high half cached), rejection
                    # loop included.
                    while True:
                        if h:
                            h = 0
                            u = hv
                        else:
                            if pos == wlen:
                                words = take_raw(rng, _WORD_CHUNK).tolist()
                                wlen = _WORD_CHUNK
                                pos = 0
                            w2 = words[pos]
                            pos += 1
                            h = 1
                            hv = w2 >> 32
                            u = w2 & _U32
                        prod = u * b
                        if (prod & _U32) >= t:
                            val = prod >> 32
                            break
                if row is None:
                    dst = val if val < node else val + 1
                else:
                    dst = row[val]
            tid = tid_c
            tid_c += 1
            txn[tid] = [node, dst, is_mem, cycle, 0, 0]  # 0 == _IN_NET
            issued += 1
            outstanding[node] += 1
            if faulty and not flow_ok[node * n + dst]:
                # Unroutable under the degraded table: defer to backoff
                # (all draws already made — the stream stays pristine).
                self._defer_new(tid, cycle)
                continue
            f = node * n + dst
            source_q[node].append(
                (vc_of[f], inj_key[f], req_size, dst,
                 (tid << 33) | (cycle << 1) | is_mem)
            )
            pending |= 1 << node
            in_flight += 1
            pid += 1
            if retry is not None:
                heappush(dq, (cycle + timeout, tid, 0))

        self._words = words
        self._wpos = pos
        self._whas = h
        self._wval = hv
        self._tid = tid_c
        self.issued = issued

        replies = self.pending_replies
        if replies and replies[0][0] <= cycle:
            return self._release_replies(cycle, pending, in_flight, pid)
        return pending, in_flight, pid

    def _generate_fallback(self, cycle, pending, in_flight, pid):
        """Spec-less custom patterns: the same loop over real Generator
        calls (``random()``/``integers``/``dest_fn``) — bit-identical by
        construction, without the raw-word savings."""
        retry = self.retry
        if retry is not None and (
            (self._deadline_q and self._deadline_q[0][0] <= cycle)
            or (self._retry_q and self._retry_q[0][0] <= cycle)
        ):
            pending, in_flight, pid = self._retransmit(
                cycle, pending, in_flight, pid
            )
        rng = self.rng
        rng_random = rng.random
        rng_integers = rng.integers
        dest = self.traffic.dest_fn
        outstanding = self.outstanding
        mlp = self.mlp
        demand = self.demand_rate
        memf = self.memory_fraction
        source_q = self.source_q
        vc_of = self.vc_of
        inj_key = self.inj_key
        n = self.n
        mc_rows = self._mc_rows
        req_size = CONTROL_FLITS
        txn = self.txn
        tid_c = self._tid
        issued = self.issued
        faulty = self._faulty
        flow_ok = self.flow_ok
        dq = self._deadline_q
        timeout = retry.timeout if retry is not None else 0

        for node in range(n):
            if outstanding[node] >= mlp:
                continue
            if rng_random() >= demand:
                continue
            if rng_random() < memf:
                is_mem = 1
                row = mc_rows[node]
                dst = row[int(rng_integers(len(row)))]
            else:
                is_mem = 0
                dst = dest(node, rng)
            tid = tid_c
            tid_c += 1
            txn[tid] = [node, dst, is_mem, cycle, 0, 0]  # 0 == _IN_NET
            issued += 1
            outstanding[node] += 1
            if faulty and not flow_ok[node * n + dst]:
                self._defer_new(tid, cycle)
                continue
            f = node * n + dst
            source_q[node].append(
                (vc_of[f], inj_key[f], req_size, dst,
                 (tid << 33) | (cycle << 1) | is_mem)
            )
            pending |= 1 << node
            in_flight += 1
            pid += 1
            if retry is not None:
                heappush(dq, (cycle + timeout, tid, 0))

        self._tid = tid_c
        self.issued = issued

        replies = self.pending_replies
        if replies and replies[0][0] <= cycle:
            return self._release_replies(cycle, pending, in_flight, pid)
        return pending, in_flight, pid

    def _release_replies(self, cycle, pending, in_flight, pid):
        """Move matured replies into their servers' source queues, after
        the cycle's request injection — the reference's ``_generate``
        order.  Callers guard on the heap head, so the common no-reply
        cycle never pays the call.  Under faults, a reply whose server
        died (or whose path home vanished) times its transaction out
        instead of injecting."""
        replies = self.pending_replies
        source_q = self.source_q
        vc_of = self.vc_of
        inj_key = self.inj_key
        n = self.n
        faulty = self._faulty
        flow_ok = self.flow_ok
        txn = self.txn
        while replies and replies[0][0] <= cycle:
            _, rdst, server, size, birth, tid = heappop(replies)
            if faulty and not flow_ok[server * n + rdst]:
                t = txn.get(tid)
                if t is not None and t[5] == _IN_NET:
                    self._timeout_txn(tid, t, cycle)
                continue
            f = server * n + rdst
            source_q[server].append(
                (vc_of[f], inj_key[f], size, rdst, (tid << 32) | birth)
            )
            pending |= 1 << server
            in_flight += 1
            pid += 1
        return pending, in_flight, pid

    # -- ejection hook ---------------------------------------------------------
    def _eject_closed(self, cycle, rec, in_flight):
        """Mirror of the reference ``_on_eject``: live requests schedule
        their reply after the service latency; returning replies retire
        the transaction and account the round trip.  Stale packets —
        their transaction already failed, completed, or re-entered
        backoff — eject silently."""
        size = rec[2]
        meta = rec[5]
        if size == CONTROL_FLITS:
            # request at its home node: meta = tid << 33 | birth << 1 | mem
            tid = meta >> 33
            t = self.txn.get(tid)
            if t is None or t[5] != _IN_NET:
                return in_flight
            service = self.memory_cycles if t[_T_MEM] else self.directory_cycles
            heappush(
                self.pending_replies,
                (cycle + service, t[_T_NODE], rec[4], DATA_FLITS,
                 t[_T_BIRTH], tid),
            )
            return in_flight
        # reply came home (at rec[4]): request complete.  (The fused
        # loop's eject path already decremented in-flight for the reply
        # packet itself.)  meta = tid << 32 | birth.
        tid = meta >> 32
        t = self.txn.pop(tid, None)
        if t is None:
            return in_flight
        node = rec[4]
        outstanding = self.outstanding
        o = outstanding[node] - 1
        outstanding[node] = o if o > 0 else 0
        self.completed_total += 1
        if self._measure_rtts:
            self.completed += 1
            self.rtt_sum += cycle - (meta & _U32)
        return in_flight

    # -- fault epochs ----------------------------------------------------------
    def _apply_epoch(self, epoch) -> None:
        """Epoch swap + drop recovery, mirroring the reference: the
        canonical walk's dropped records route their transactions into
        the shared retry path (sorted-tid order, so both engines consume
        the backoff stream identically)."""
        log: List[tuple] = []
        self._drop_log = log
        try:
            super()._apply_epoch(epoch)
        finally:
            self._drop_log = None
        if log:
            self._fail_or_retry_dropped(
                (
                    (meta >> 33) if size == CONTROL_FLITS else (meta >> 32)
                    for size, meta in log
                ),
                self.cycle,
            )


#: Closed-loop engine name -> simulator class (same names as the
#: open-loop :data:`repro.sim.fastnet.ENGINES`).
CLOSED_ENGINES = {
    "reference": ClosedLoopSimulator,
    "fast": FastClosedLoopSimulator,
}


def resolve_closed_loop_engine(engine: str):
    """Map an engine name to its closed-loop simulator class."""
    try:
        return CLOSED_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown closed-loop engine {engine!r}: expected one of "
            f"{sorted(CLOSED_ENGINES)}"
        ) from None
