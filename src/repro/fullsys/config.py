"""Full-system configuration constants (paper Table IV).

Encodes the evaluated system so tests can assert the reproduction uses
the paper's parameters, and so users changing one knob see everything it
feeds.  Where our substrate abstracts a component (e.g. the per-chiplet
NoC is folded into the CDC hop charge), the mapping is noted inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class FullSystemConfig:
    """The paper's Table IV, as data."""

    # Cores: 4 chiplets x 16 = 64 OoO cores at 3.8 GHz.
    num_chiplets: int = 4
    cores_per_chiplet: int = 16
    core_clock_ghz: float = 3.8
    l1d_kb: int = 32
    l1i_kb: int = 32
    l2_mb: int = 2

    # Memory: 16 x 2GB DDR4 behind the outer-column MC routers.
    num_memory_controllers: int = 16
    memory_gb_per_mc: int = 2

    # Network: per-chiplet 4x4 mesh NoC at 3.8 GHz feeding a 4x5 NoI.
    noc_mesh_dims: Tuple[int, int] = (4, 4)
    noc_clock_ghz: float = 3.8
    noi_dims: Tuple[int, int] = (4, 5)
    link_width_bytes: int = 8
    router_latency_cycles: int = 2
    cdc_latency_cycles: int = 2

    # VCs: 10 total; 6 escape for MCLB/LPBT routing, 2 for NDBT.
    total_vcs: int = 10
    escape_vcs_mclb: int = 6
    escape_vcs_ndbt: int = 2

    # Protocol: MESI two-level (modeled as request/response flows with
    # a directory service delay; see repro.fullsys.closedloop).
    protocol: str = "MESI Two Level"

    # Request timeout/retry defaults for degraded (faulty) closed-loop
    # runs: a request whose reply misses the timeout is retransmitted up
    # to ``request_max_retries`` times with exponential backoff (the
    # base delay doubles per attempt).  The timeout comfortably exceeds
    # the worst pristine round trip of every Table IV topology at the
    # budgets the experiments run, so retries fire on faults and extreme
    # congestion, not steady-state traffic.
    request_timeout_cycles: int = 96
    request_max_retries: int = 5
    retry_backoff_cycles: int = 8

    @property
    def num_cores(self) -> int:
        return self.num_chiplets * self.cores_per_chiplet

    @property
    def noi_routers(self) -> int:
        return self.noi_dims[0] * self.noi_dims[1]

    @property
    def cores_per_noi_router(self) -> float:
        """Concentration over the middle (core) columns (Fig. 2(b))."""
        core_routers = self.noi_routers - 2 * self.noi_dims[0]
        return self.num_cores / core_routers

    @property
    def mcs_per_noi_router(self) -> float:
        mc_routers = 2 * self.noi_dims[0]
        return self.num_memory_controllers / mc_routers


#: The canonical Table IV configuration.
TABLE4 = FullSystemConfig()
