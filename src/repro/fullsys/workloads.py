"""PARSEC workload profiles for the full-system model (paper Section V-C).

The paper's Fig. 8 orders benchmarks by **L2 misses per instruction** —
the knob that couples network latency to application performance — and
simulates every PARSEC benchmark except vips.  gem5 full-system runs are
out of scope (see DESIGN.md substitutions); instead each benchmark is a
profile of the quantities the paper's analysis actually exercises:

* ``l2_mpki`` — L2 misses per kilo-instruction (drives traffic volume and
  the execution-time sensitivity to packet latency); values follow the
  published PARSEC characterization ordering (Bienia et al., PACT'08 and
  follow-ups) and the paper's X-axis ordering;
* ``memory_fraction`` — share of misses served by memory controllers
  (rest is cache-to-cache coherence traffic);
* ``base_cpi`` — CPI with an ideal (zero-latency) network;
* ``mlp`` — sustained memory-level parallelism per core (how much miss
  latency the OoO core overlaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class WorkloadProfile:
    """Network-relevant characterization of one PARSEC benchmark."""

    name: str
    l2_mpki: float
    memory_fraction: float
    base_cpi: float
    mlp: float


#: Fig. 8's X-axis order: increasing L2 misses per instruction.
PARSEC: List[WorkloadProfile] = [
    WorkloadProfile("swaptions", 0.15, 0.55, 0.55, 2.0),
    WorkloadProfile("blackscholes", 0.25, 0.60, 0.60, 2.0),
    WorkloadProfile("freqmine", 0.70, 0.55, 0.70, 2.5),
    WorkloadProfile("bodytrack", 1.00, 0.55, 0.70, 2.5),
    WorkloadProfile("raytrace", 1.20, 0.50, 0.75, 2.5),
    WorkloadProfile("x264", 1.60, 0.60, 0.65, 3.0),
    WorkloadProfile("ferret", 2.10, 0.55, 0.80, 3.0),
    WorkloadProfile("fluidanimate", 2.30, 0.50, 0.75, 3.0),
    WorkloadProfile("dedup", 2.60, 0.60, 0.80, 3.5),
    WorkloadProfile("facesim", 3.20, 0.55, 0.85, 3.5),
    WorkloadProfile("streamcluster", 6.00, 0.65, 0.90, 4.0),
    WorkloadProfile("canneal", 10.00, 0.70, 1.00, 4.0),
]

BY_NAME: Dict[str, WorkloadProfile] = {w.name: w for w in PARSEC}


def workload(name: str) -> WorkloadProfile:
    try:
        return BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown PARSEC workload {name!r}; choose from "
            f"{sorted(BY_NAME)}"
        ) from None
