"""Heuristic (simulated-annealing) topology search over directed links.

This is both (a) the scalability fallback where the MILP's exhaustive
branch-and-bound becomes impractical within a benchmark's time budget
(48-router instances; the paper spends *days* of Gurobi time there), and
(b) an ablation baseline quantifying what the exact formulation buys over
local search on small instances.

Moves rewire one directed link at a time, preserving in/out radix and the
valid-link set; the cost is the exact objective (total hops for LatOp,
negated sparsest cut for SCOp) evaluated on the candidate topology.

The move loop is incremental: the adjacency matrix, in/out degree
arrays, and the membership mask over the valid-link set are maintained
across steps (swap applied in place, reverted on rejection) instead of
being rebuilt from the link list per move, and candidate links are
selected with one vectorized mask over the pre-indexed valid-link
arrays.  Candidate ordering and the RNG call sequence match the original
list-rebuilding implementation exactly, so results are unchanged — only
the per-step cost drops from "rebuild everything" to one all-pairs
shortest-path evaluation (the irreducible exact-objective part).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..topology import Layout, Topology, average_hops, sparsest_cut
from .apsp import IncrementalAPSP, full_apsp
from .netsmith import GenerationResult, NetSmithConfig


def _total_hops(topo: Topology, weights: Optional[np.ndarray]) -> float:
    d = topo.hop_matrix()
    if not np.isfinite(d).all():
        return float("inf")
    if weights is None:
        return float(d.sum())
    return float((d * weights).sum())


def _initial_directed(
    layout: Layout,
    allowed: List[Tuple[int, int]],
    radix: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Random strongly-connected directed start: a ring through the grid
    snake order plus random fill."""
    n = layout.n
    # boustrophedon ring guarantees strong connectivity with short links
    snake = []
    for y in range(layout.rows):
        xs = range(layout.cols) if y % 2 == 0 else range(layout.cols - 1, -1, -1)
        snake.extend(layout.router_at(x, y) for x in xs)
    links = set()
    for k in range(n):
        a, b = snake[k], snake[(k + 1) % n]
        links.add((a, b))
        links.add((b, a))
    allowed_set = set(allowed)
    links &= allowed_set  # wrap link may be too long; fix connectivity below
    for k in range(n):
        a, b = snake[k], snake[(k + 1) % n]
        if (a, b) not in allowed_set:
            # route the wrap through a neighbor chain: fall back to column 0
            pass
    out_deg = np.zeros(n, dtype=int)
    in_deg = np.zeros(n, dtype=int)
    for a, b in links:
        out_deg[a] += 1
        in_deg[b] += 1
    pool = [l for l in allowed if l not in links]
    rng.shuffle(pool)
    for a, b in pool:
        if out_deg[a] < radix and in_deg[b] < radix:
            links.add((a, b))
            out_deg[a] += 1
            in_deg[b] += 1
    return sorted(links)


def anneal_topology(
    config: NetSmithConfig,
    objective: str = "latency",
    steps: int = 8000,
    seed: int = 0,
    t0: float = 8.0,
    t1: float = 0.02,
    initial: Optional[Topology] = None,
    apsp: str = "incremental",
) -> GenerationResult:
    """Simulated-annealing topology generation (NetSmith-SA).

    ``objective``: ``"latency"`` minimizes (weighted) total hops;
    ``"sparsest_cut"`` maximizes the exact sparsest-cut value with a small
    hop tie-break (mirroring :func:`repro.core.scop.generate_scop`).

    An explicit ``config.diameter_bound`` is honored (C8): excess
    diameter is penalized into infeasibility during the search and the
    final topology is checked, raising if the bound cannot be met —
    so an SA (or portfolio) design point never silently ships a
    bound-violating topology.  Without a bound the cost is exactly the
    historical unconstrained objective.

    ``apsp`` selects how the per-move hop matrix is obtained:
    ``"incremental"`` (default) maintains it across moves with
    :class:`~repro.core.apsp.IncrementalAPSP` — only rows whose
    shortest paths crossed the mutated link are recomputed —
    ``"full"`` recomputes all pairs per move.  Both produce
    bit-identical objectives and an identical RNG call sequence, so
    results never depend on the choice (the scale benchmark asserts
    it); ``"full"`` is kept as the A/B oracle.
    """
    layout = config.layout
    rng = np.random.default_rng(seed)
    allowed = layout.valid_links(config.link_class)
    radix = config.radix

    if objective == "sparsest_cut" and layout.n > 22:
        raise ValueError("sparsest-cut objective needs exact cuts (n <= 22)")
    if apsp not in ("incremental", "full"):
        raise ValueError(f"unknown apsp mode {apsp!r}")

    n = layout.n

    # C8: with an explicit diameter bound, excess diameter is penalized
    # steeply enough to dominate any hop/cut difference, steering the
    # search into the feasible region (and the final result is checked).
    # An unset bound keeps the historical unconstrained cost exactly.
    diam_bound = config.diameter_bound
    _DIAM_PENALTY = 1e7

    def cost_from_dist(d: np.ndarray, adj: np.ndarray) -> float:
        if not np.isfinite(d).all():
            return float("inf")
        penalty = 0.0
        if diam_bound is not None:
            penalty = _DIAM_PENALTY * max(0.0, float(d.max()) - diam_bound)
        if objective == "latency":
            w = config.traffic_weights
            h = float(d.sum()) if w is None else float((d * w).sum())
            return h + penalty
        b = sparsest_cut(Topology.from_adjacency(layout, adj), exact=True).value
        return -b * 1e4 + 1e-4 * float(d.sum()) + penalty

    def cost_of(adj: np.ndarray) -> float:
        return cost_from_dist(full_apsp(adj), adj)

    if initial is not None:
        links = sorted(initial.directed_links)
    else:
        links = _initial_directed(layout, allowed, radix, rng)

    # Pre-indexed valid-link set for vectorized candidate masks.
    allowed_arr = np.asarray(allowed, dtype=np.intp)
    a_src, a_dst = allowed_arr[:, 0], allowed_arr[:, 1]
    allowed_idx = {l: k for k, l in enumerate(allowed)}

    # Incremental state: maintained across steps, reverted on rejection.
    # An `initial` topology may carry links outside the valid-link set
    # (e.g. polished down from a longer link class); they participate in
    # degrees/adjacency and can be dropped by moves, but never index the
    # candidate mask — exactly the set-membership semantics of the
    # original list-rebuilding loop.
    adj = np.zeros((n, n), dtype=bool)
    out_deg = np.zeros(n, dtype=np.intp)
    in_deg = np.zeros(n, dtype=np.intp)
    in_cur = np.zeros(len(allowed), dtype=bool)
    for a, b in links:
        adj[a, b] = True
        out_deg[a] += 1
        in_deg[b] += 1
        k = allowed_idx.get((a, b))
        if k is not None:
            in_cur[k] = True

    cur = list(links)
    tracker = IncrementalAPSP(adj) if apsp == "incremental" else None
    cur_cost = (
        cost_from_dist(tracker.dist, adj) if tracker is not None
        else cost_of(adj)
    )
    best, best_cost = list(cur), cur_cost

    for step in range(steps):
        temp = t0 * (t1 / t0) ** (step / max(steps - 1, 1))
        drop_idx = int(rng.integers(len(cur)))
        da, db = dropped = cur[drop_idx]
        # Same candidate set, in the same `allowed` order, as the
        # original per-move list rebuild: links outside the current set
        # whose endpoints have radix headroom once `dropped` is removed.
        ok = (
            ~in_cur
            & (out_deg[a_src] - (a_src == da) < radix)
            & (in_deg[a_dst] - (a_dst == db) < radix)
        )
        if config.symmetric:
            ok &= adj[a_dst, a_src]  # reverse link present (pre-drop)
        cands = np.nonzero(ok)[0]
        if cands.size == 0:
            continue
        added_k = int(cands[int(rng.integers(cands.size))])
        aa, ab = added = allowed[added_k]
        adj[da, db] = False
        adj[aa, ab] = True
        if tracker is not None:
            c = cost_from_dist(tracker.candidate(adj, dropped, added), adj)
        else:
            c = cost_of(adj)
        if c < cur_cost or rng.random() < math.exp(
            -(c - cur_cost) / max(temp, 1e-9)
        ):
            if tracker is not None:
                tracker.commit()
            cur = cur[:drop_idx] + cur[drop_idx + 1 :] + [added]
            cur_cost = c
            out_deg[da] -= 1
            in_deg[db] -= 1
            out_deg[aa] += 1
            in_deg[ab] += 1
            dropped_k = allowed_idx.get(dropped)
            if dropped_k is not None:
                in_cur[dropped_k] = False
            in_cur[added_k] = True
            if c < best_cost:
                best, best_cost = list(cur), c
        else:
            adj[aa, ab] = False
            adj[da, db] = True

    suffix = "LatOp" if objective == "latency" else "SCOp"
    topo = Topology(
        layout,
        best,
        name=f"NS-SA-{suffix}-{config.link_class}",
        link_class=config.link_class,
    )
    topo.check(radix=radix, link_class=config.link_class)
    if diam_bound is not None:
        d = topo.hop_matrix()
        if float(d.max()) > diam_bound:
            raise ValueError(
                f"{topo.name}: annealing could not satisfy diameter bound "
                f"{diam_bound} (reached {int(d.max())}); raise `steps` or "
                "relax the bound"
            )
    obj_val = (
        _total_hops(topo, config.traffic_weights)
        if objective == "latency"
        else sparsest_cut(topo, exact=layout.n <= 22).value
    )
    return GenerationResult(
        topology=topo,
        objective=float(obj_val),
        mip_gap=float("nan"),
        status="heuristic",
        solve_time_s=0.0,
        result=None,
    )
