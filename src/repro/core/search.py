"""Heuristic (simulated-annealing) topology search over directed links.

This is both (a) the scalability fallback where the MILP's exhaustive
branch-and-bound becomes impractical within a benchmark's time budget
(48-router instances; the paper spends *days* of Gurobi time there), and
(b) an ablation baseline quantifying what the exact formulation buys over
local search on small instances.

Moves rewire one directed link at a time, preserving in/out radix and the
valid-link set; the cost is the exact objective (total hops for LatOp,
negated sparsest cut for SCOp) evaluated on the candidate topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..topology import Layout, Topology, average_hops, sparsest_cut
from .netsmith import GenerationResult, NetSmithConfig


def _total_hops(topo: Topology, weights: Optional[np.ndarray]) -> float:
    d = topo.hop_matrix()
    if not np.isfinite(d).all():
        return float("inf")
    if weights is None:
        return float(d.sum())
    return float((d * weights).sum())


def _initial_directed(
    layout: Layout,
    allowed: List[Tuple[int, int]],
    radix: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Random strongly-connected directed start: a ring through the grid
    snake order plus random fill."""
    n = layout.n
    # boustrophedon ring guarantees strong connectivity with short links
    snake = []
    for y in range(layout.rows):
        xs = range(layout.cols) if y % 2 == 0 else range(layout.cols - 1, -1, -1)
        snake.extend(layout.router_at(x, y) for x in xs)
    links = set()
    for k in range(n):
        a, b = snake[k], snake[(k + 1) % n]
        links.add((a, b))
        links.add((b, a))
    allowed_set = set(allowed)
    links &= allowed_set  # wrap link may be too long; fix connectivity below
    for k in range(n):
        a, b = snake[k], snake[(k + 1) % n]
        if (a, b) not in allowed_set:
            # route the wrap through a neighbor chain: fall back to column 0
            pass
    out_deg = np.zeros(n, dtype=int)
    in_deg = np.zeros(n, dtype=int)
    for a, b in links:
        out_deg[a] += 1
        in_deg[b] += 1
    pool = [l for l in allowed if l not in links]
    rng.shuffle(pool)
    for a, b in pool:
        if out_deg[a] < radix and in_deg[b] < radix:
            links.add((a, b))
            out_deg[a] += 1
            in_deg[b] += 1
    return sorted(links)


def anneal_topology(
    config: NetSmithConfig,
    objective: str = "latency",
    steps: int = 8000,
    seed: int = 0,
    t0: float = 8.0,
    t1: float = 0.02,
    initial: Optional[Topology] = None,
) -> GenerationResult:
    """Simulated-annealing topology generation (NetSmith-SA).

    ``objective``: ``"latency"`` minimizes (weighted) total hops;
    ``"sparsest_cut"`` maximizes the exact sparsest-cut value with a small
    hop tie-break (mirroring :func:`repro.core.scop.generate_scop`).
    """
    layout = config.layout
    rng = np.random.default_rng(seed)
    allowed = layout.valid_links(config.link_class)
    allowed_set = set(allowed)
    radix = config.radix

    if objective == "sparsest_cut" and layout.n > 22:
        raise ValueError("sparsest-cut objective needs exact cuts (n <= 22)")

    def cost(t: Topology) -> float:
        if objective == "latency":
            return _total_hops(t, config.traffic_weights)
        h = _total_hops(t, None)
        if not math.isfinite(h):
            return float("inf")
        b = sparsest_cut(t, exact=True).value
        return -b * 1e4 + 1e-4 * h

    if initial is not None:
        links = sorted(initial.directed_links)
    else:
        links = _initial_directed(layout, allowed, radix, rng)

    def degrees(ls):
        out_deg = np.zeros(layout.n, dtype=int)
        in_deg = np.zeros(layout.n, dtype=int)
        for a, b in ls:
            out_deg[a] += 1
            in_deg[b] += 1
        return out_deg, in_deg

    cur = list(links)
    cur_cost = cost(Topology(layout, cur, link_class=config.link_class))
    best, best_cost = list(cur), cur_cost

    for step in range(steps):
        temp = t0 * (t1 / t0) ** (step / max(steps - 1, 1))
        out_deg, in_deg = degrees(cur)
        drop_idx = int(rng.integers(len(cur)))
        dropped = cur[drop_idx]
        cur_set = set(cur)
        od = out_deg.copy()
        idg = in_deg.copy()
        od[dropped[0]] -= 1
        idg[dropped[1]] -= 1
        cands = [
            l
            for l in allowed
            if l not in cur_set
            and l != dropped
            and od[l[0]] < radix
            and idg[l[1]] < radix
        ]
        if config.symmetric:
            cands = [l for l in cands if (l[1], l[0]) in cur_set or l == dropped]
        if not cands:
            continue
        added = cands[int(rng.integers(len(cands)))]
        trial = cur[:drop_idx] + cur[drop_idx + 1 :] + [added]
        t = Topology(layout, trial, link_class=config.link_class)
        c = cost(t)
        if c < cur_cost or rng.random() < math.exp(
            -(c - cur_cost) / max(temp, 1e-9)
        ):
            cur, cur_cost = trial, c
            if c < best_cost:
                best, best_cost = list(trial), c

    suffix = "LatOp" if objective == "latency" else "SCOp"
    topo = Topology(
        layout,
        best,
        name=f"NS-SA-{suffix}-{config.link_class}",
        link_class=config.link_class,
    )
    topo.check(radix=radix, link_class=config.link_class)
    obj_val = (
        _total_hops(topo, config.traffic_weights)
        if objective == "latency"
        else sparsest_cut(topo, exact=layout.n <= 22).value
    )
    return GenerationResult(
        topology=topo,
        objective=float(obj_val),
        mip_gap=float("nan"),
        status="heuristic",
        solve_time_s=0.0,
        result=None,
    )
