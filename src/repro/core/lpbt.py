"""LPBT baseline: the prior MILP NoC-synthesis formulation
(Srinivasan, Chatha & Konjevod, TVLSI'06 [46]; paper Sections II-E/III-C).

LPBT encodes routing *inside* the synthesis MILP through per-flow arc
variables with flow conservation — the "port mapping" style the paper
contrasts with NetSmith's triangle-inequality distances.  The formulation
therefore computes the path of every single source/destination pair while
solving, which is why it needed ~20 days per topology on the paper's
hardware.  We reproduce that structural disadvantage faithfully:

* binary links ``M(i,j)`` over the valid-link set, radix-capped;
* per-flow binary arc usage ``x[s,d,i,j]`` with unit flow conservation
  from ``s`` to ``d``; arcs only on placed links (``x <= M``);
* **LPBT-Hops** minimizes total arc usage (the intermediate "latency"
  variable the paper adds);
* **LPBT-Power** minimizes a link-energy proxy: per-link static cost
  (placing a wire) plus per-traversal dynamic cost scaled by wire length
  — the resource/power objective of the original SoC context.

On anything beyond toy grids this model only yields time-limited
incumbents, reproducing the paper's observation that LPBT synthesizes
poor general-purpose networks; Table II's published LPBT rows are
additionally frozen via signature reconstruction for the comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..milp import MINIMIZE, Model, quicksum
from ..topology import Layout, Topology
from .netsmith import GenerationResult


@dataclass
class LPBTConfig:
    """Inputs mirroring :class:`repro.core.netsmith.NetSmithConfig`."""

    layout: Layout
    link_class: str = "small"
    radix: int = 4
    objective: str = "hops"  # "hops" or "power"
    static_link_cost: float = 4.0  # power objective: cost of placing a wire
    dynamic_hop_cost: float = 1.0  # power objective: cost per traversal


def build_lpbt_model(config: LPBTConfig) -> Tuple[Model, Dict, Dict]:
    """Construct the port-mapping MILP; returns (model, m_vars, x_vars)."""
    layout = config.layout
    n = layout.n
    links = layout.valid_links(config.link_class)
    link_set = set(links)

    model = Model(f"lpbt-{config.objective}-{config.link_class}", sense=MINIMIZE)
    m_vars = {(i, j): model.add_binary(f"M[{i},{j}]") for (i, j) in links}

    for i in range(n):
        out = [m_vars[(i, j)] for j in range(n) if (i, j) in link_set]
        inc = [m_vars[(j, i)] for j in range(n) if (j, i) in link_set]
        model.add_constr(quicksum(out) <= config.radix)
        model.add_constr(quicksum(inc) <= config.radix)

    # Per-flow arc variables with flow conservation (the expensive part).
    x_vars: Dict[Tuple[int, int, int, int], object] = {}
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            for (i, j) in links:
                x = model.add_binary(f"x[{s},{d},{i},{j}]")
                x_vars[(s, d, i, j)] = x
                model.add_constr(x <= m_vars[(i, j)])
            for v in range(n):
                outgoing = [
                    x_vars[(s, d, v, j)] for j in range(n) if (v, j) in link_set
                ]
                incoming = [
                    x_vars[(s, d, i, v)] for i in range(n) if (i, v) in link_set
                ]
                supply = 1 if v == s else (-1 if v == d else 0)
                model.add_constr(
                    quicksum(outgoing) - quicksum(incoming) == supply,
                    name=f"flow[{s},{d},{v}]",
                )

    if config.objective == "hops":
        model.set_objective(quicksum(x_vars.values()))
    elif config.objective == "power":
        static = quicksum(
            config.static_link_cost * layout.length(i, j) * v
            for (i, j), v in m_vars.items()
        )
        dynamic = quicksum(
            config.dynamic_hop_cost * layout.length(i, j) * x
            for (s, d, i, j), x in x_vars.items()
        )
        model.set_objective(static + dynamic)
    else:
        raise ValueError(f"unknown LPBT objective {config.objective!r}")
    return model, m_vars, x_vars


def generate_lpbt(
    config: LPBTConfig,
    time_limit: Optional[float] = 120.0,
    backend: str = "scipy",
    **solve_kw,
) -> GenerationResult:
    """Run LPBT synthesis (expect time-limited incumbents beyond ~3x3)."""
    model, m_vars, _ = build_lpbt_model(config)
    res = model.solve(backend=backend, time_limit=time_limit, **solve_kw)
    if not res.ok:
        raise RuntimeError(
            f"LPBT produced no incumbent within the time limit ({res.status}); "
            "this mirrors the paper's 20-day solve times — raise time_limit "
            "or use the frozen Table II reconstructions"
        )
    name = f"LPBT-{config.objective.capitalize()}"
    links = [(i, j) for (i, j), v in m_vars.items() if res.value(v) > 0.5]
    topo = Topology(config.layout, links, name=name, link_class=config.link_class)
    return GenerationResult(
        topology=topo,
        objective=float(res.objective),
        mip_gap=res.mip_gap,
        status=res.status,
        solve_time_s=res.solve_time_s,
        result=res,
    )
