"""SCOp: sparsest-cut-bandwidth-optimized topology generation (O2/C6/C7).

The paper constrains ``B`` against *every* bipartition (C6), noting the
20-router instance is "feasible in reasonable time frames" on Gurobi.
Materializing 2^(n-1) rows in a Python-built model is not; we use the
standard equivalent — **lazy constraint generation**:

1. solve with the cut constraints discovered so far (initially none, so
   ``B`` is only capped by ``b_cap``);
2. extract the incumbent topology and compute its *exact* sparsest cut;
3. if the model's claimed ``B`` exceeds the true value, the found cut is
   a violated C6 row — add it (both directions, per the paper's
   asymmetric-link rule) and re-solve.

At termination the incumbent satisfies every cut constraint the
exhaustive model would impose, so the fixpoint is the same; an ablation
benchmark validates this equivalence against explicit enumeration on
small instances.

A small latency tie-break (``hop_penalty * Dtotal``) is subtracted from
the objective so that, among equal-bandwidth optima, low-hop designs are
preferred (NS-SCOp's Table II rows have near-LatOp hop counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..milp import MAXIMIZE, Model, quicksum
from ..topology import Topology, sparsest_cut
from .netsmith import FormulationHandles, GenerationResult, NetSmithConfig, build_distance_formulation


@dataclass
class SCOpDiagnostics:
    """Per-iteration record of the lazy cut loop."""

    iterations: int
    cuts_added: int
    claimed_b: float
    true_b: float


def _cut_expression(handles: FormulationHandles, u_mask: np.ndarray, direction: str):
    """Linear expression for cross(U,V) (C6 numerator) in one direction."""
    terms = []
    for (i, j), var in handles.m_vars.items():
        if direction == "uv" and u_mask[i] and not u_mask[j]:
            terms.append(var)
        elif direction == "vu" and not u_mask[i] and u_mask[j]:
            terms.append(var)
    return quicksum(terms) if terms else quicksum([])


def generate_scop(
    config: NetSmithConfig,
    time_limit: Optional[float] = 60.0,
    backend: str = "scipy",
    max_iterations: int = 25,
    hop_penalty: float = 1e-4,
    tol: float = 1e-6,
    name: Optional[str] = None,
    initial_cuts: Optional[List[np.ndarray]] = None,
    **solve_kw,
) -> Tuple[GenerationResult, SCOpDiagnostics]:
    """Generate a sparsest-cut-optimized (SCOp) topology.

    ``time_limit`` applies per lazy iteration.  Returns the generation
    result and lazy-loop diagnostics.
    """
    if config.layout.n > 22:
        raise ValueError(
            "SCOp needs exact sparsest-cut separation; n > 22 is infeasible "
            "(the paper, likewise, reports SCOp only at 20 routers)"
        )
    handles = build_distance_formulation(config, sense=MAXIMIZE)
    model = handles.model
    n = config.layout.n

    # B: sparsest-cut bandwidth (continuous; values are ratios like 10/100).
    b_cap = config.radix  # loose upper bound: radix links per router pair side
    b = model.add_var("B", lb=0.0, ub=float(b_cap))
    model.set_objective(b - hop_penalty * handles.total_hops)

    # Seed cuts: the balanced horizontal/vertical grid splits plus caller's.
    seeds: List[np.ndarray] = []
    lay = config.layout
    memb = np.zeros(n, dtype=bool)
    for r in range(n):
        _, y = lay.position(r)
        memb[r] = y < lay.rows // 2
    seeds.append(memb.copy())
    if lay.cols % 2 == 0:
        memb = np.zeros(n, dtype=bool)
        for r in range(n):
            x, _ = lay.position(r)
            memb[r] = x < lay.cols // 2
        seeds.append(memb.copy())
    if initial_cuts:
        seeds.extend(np.asarray(c, dtype=bool) for c in initial_cuts)

    added: set = set()

    def add_cut(u_mask: np.ndarray) -> bool:
        key = tuple(u_mask.tolist())
        ckey = tuple((~u_mask).tolist())
        if key in added or ckey in added:
            return False
        added.add(key)
        su = int(u_mask.sum())
        sv = n - su
        scale = float(su * sv)
        model.add_constr(
            scale * b <= _cut_expression(handles, u_mask, "uv"),
            name=f"cut_uv[{len(added)}]",
        )
        model.add_constr(
            scale * b <= _cut_expression(handles, u_mask, "vu"),
            name=f"cut_vu[{len(added)}]",
        )
        return True

    for s in seeds:
        add_cut(s)

    cuts_added = len(added)
    last_res = None
    claimed = np.inf
    true_val = -np.inf
    for it in range(1, max_iterations + 1):
        res = model.solve(backend=backend, time_limit=time_limit, **solve_kw)
        if not res.ok:
            raise RuntimeError(f"SCOp iteration {it} failed ({res.status})")
        last_res = res
        topo = handles.extract_topology(res)
        claimed = res.value(b)
        cut = sparsest_cut(topo, exact=True)
        true_val = cut.value
        if claimed <= true_val + tol:
            break
        if not add_cut(cut.members):
            # separation returned a known cut: numerical stall; accept.
            break
        cuts_added = len(added)
    else:
        it = max_iterations

    label = name or f"NS-SCOp-{config.link_class}"
    topo = handles.extract_topology(last_res, name=label)
    topo.check(radix=config.radix, link_class=config.link_class)
    gen = GenerationResult(
        topology=topo,
        objective=float(true_val),
        mip_gap=last_res.mip_gap,
        status=last_res.status,
        solve_time_s=last_res.solve_time_s,
        result=last_res,
    )
    diag = SCOpDiagnostics(
        iterations=it,
        cuts_added=cuts_added,
        claimed_b=float(claimed),
        true_b=float(true_val),
    )
    return gen, diag


def exhaustive_cut_constraints(
    handles: FormulationHandles, b_var, max_n: int = 12
) -> int:
    """Materialize *all* C6 cut rows explicitly (ablation reference).

    Only sensible for tiny instances; returns the number of cuts added.
    Used to validate that lazy generation reaches the same optimum.
    """
    n = handles.config.layout.n
    if n > max_n:
        raise ValueError(f"exhaustive C6 enumeration capped at n={max_n}")
    count = 0
    for mask in range(0, 1 << (n - 1)):
        u_mask = np.zeros(n, dtype=bool)
        u_mask[0] = True
        for k in range(1, n):
            if (mask >> (k - 1)) & 1:
                u_mask[k] = True
        su = int(u_mask.sum())
        sv = n - su
        if sv == 0:
            continue
        scale = float(su * sv)
        handles.model.add_constr(
            scale * b_var <= _cut_expression(handles, u_mask, "uv")
        )
        handles.model.add_constr(
            scale * b_var <= _cut_expression(handles, u_mask, "vu")
        )
        count += 1
    return count
