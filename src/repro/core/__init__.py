"""NetSmith core: MILP topology generation (LatOp/SCOp/ShufOpt), MCLB
routing, the LPBT baseline, solver-progress recording, heuristic search,
and the frozen-topology registry."""

from .netsmith import (
    FormulationHandles,
    GenerationResult,
    NetSmithConfig,
    build_distance_formulation,
    generate_latop,
    generate_shufopt,
    shuffle_weights,
)
from .scop import SCOpDiagnostics, exhaustive_cut_constraints, generate_scop
from .mclb import MCLBResult, MultipathResult, mclb_route, mclb_route_multipath
from .lpbt import LPBTConfig, build_lpbt_model, generate_lpbt
from .progress import GapCurve, GapSample, record_progress_bnb, record_progress_scipy
from .search import anneal_topology
from .pregenerated import netsmith_topology, register as register_pregenerated

__all__ = [
    "NetSmithConfig",
    "GenerationResult",
    "FormulationHandles",
    "build_distance_formulation",
    "generate_latop",
    "generate_shufopt",
    "shuffle_weights",
    "generate_scop",
    "SCOpDiagnostics",
    "exhaustive_cut_constraints",
    "MCLBResult",
    "mclb_route",
    "mclb_route_multipath",
    "MultipathResult",
    "LPBTConfig",
    "build_lpbt_model",
    "generate_lpbt",
    "GapCurve",
    "GapSample",
    "record_progress_bnb",
    "record_progress_scipy",
    "anneal_topology",
    "netsmith_topology",
    "register_pregenerated",
]
