"""Incremental all-pairs shortest paths for single-link SA moves.

``anneal_topology`` evaluates its exact objective from the all-pairs hop
matrix; recomputing it from scratch per move is the residual O(n·E) cost
noted since PR 5 and the wall at 256+ routers.  A move swaps exactly one
directed link — drop ``(da, db)``, add ``(aa, ab)`` — and the distance
matrix of the mutated graph can be derived exactly:

* **deletion** ``(da, db)``: a source row ``s`` can only change if some
  shortest path from ``s`` crossed the deleted edge, which (by subpath
  optimality) requires ``dist[s, da] + 1 == dist[s, db]``.  Even then,
  if another in-neighbor ``u`` of ``db`` is equally tight
  (``dist[s, u] + 1 == dist[s, db]``), every affected path re-routes
  through ``u`` at unchanged length — a tight in-neighbor is strictly
  closer than ``db``, so no shortest path to it visits ``db``, hence the
  detour never uses the deleted edge — and the row is unchanged.  The
  same argument transposes: a target column ``t`` can only change if
  ``dist[da, t] == 1 + dist[db, t]`` with no alternative tight
  *out*-neighbor of ``da``.  Whichever candidate set is smaller is
  recomputed — affected rows by BFS on the post-delete graph, or
  affected columns by BFS on its reverse;
* **insertion** ``(aa, ab)``: a shortest path uses a new edge at most
  once (no vertex repeats), so the exact update is one vectorized
  minimum: ``d' = min(d, d[:, aa, None] + 1 + d[ab, None, :])``.

Distances are small exact integers in float64, so every updated entry
equals the full-recompute value *bitwise*; objectives summed from the
matrix (same shape, same numpy pairwise reduction) are bit-identical —
the scale benchmark A/B-asserts it against ``apsp="full"``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra, shortest_path

from ..topology.csr import build_csr


def full_apsp(adj: np.ndarray) -> np.ndarray:
    """The dense hop matrix exactly as the full-recompute cost path."""
    return shortest_path(
        csr_matrix(adj.astype(np.int8)), method="D", unweighted=True
    )


def _bfs_rows(adj: np.ndarray, rows: np.ndarray, n: int) -> np.ndarray:
    """Hop distances from ``rows`` sources, via a hand-built CSR graph.

    Skips the COO round-trip and dtype copies of ``csr_matrix(dense)``;
    unweighted Dijkstra over unit weights returns the exact integer hop
    counts of the full recompute.
    """
    indptr, indices = build_csr(adj)
    g = csr_matrix(
        (np.ones(indices.size, dtype=np.float64), indices, indptr),
        shape=(n, n),
        copy=False,
    )
    return dijkstra(g, unweighted=True, indices=rows)


class IncrementalAPSP:
    """Per-pair hop distances maintained across single-link swaps.

    Usage in a propose/accept loop::

        apsp = IncrementalAPSP(adj)          # adj = current adjacency
        ...
        d = apsp.candidate(adj2, (da, db), (aa, ab))  # adj2 = post-swap
        ...
        apsp.commit()                        # iff the move was accepted

    ``candidate`` never mutates the committed state; an un-committed
    candidate is simply overwritten by the next call.
    """

    def __init__(self, adj: np.ndarray):
        self.n = adj.shape[0]
        self.dist = full_apsp(adj)
        self._cand: np.ndarray = np.empty_like(self.dist)
        self._outer: np.ndarray = np.empty_like(self.dist)
        #: affected-row counter for the last candidate (observability:
        #: the scale benchmark reports how sparse the updates really are).
        self.last_affected = 0

    def candidate(
        self,
        adj_after: np.ndarray,
        dropped: Tuple[int, int],
        added: Tuple[int, int],
    ) -> np.ndarray:
        """Exact hop matrix of ``adj_after`` (one drop + one add away).

        ``adj_after`` must differ from the committed adjacency by
        exactly the swap described; it is restored unmodified (the added
        edge is cleared temporarily to expose the mid-state graph).
        """
        da, db = dropped
        aa, ab = added
        d = self.dist
        cand = self._cand
        np.copyto(cand, d)

        # -- deletion: recompute only the slices whose paths died -------
        adj_after[aa, ab] = False  # expose the post-delete mid-state
        try:
            rows = np.nonzero(
                np.isfinite(d[:, da]) & (d[:, da] + 1.0 == d[:, db])
            )[0]
            if rows.size:
                alt_in = np.nonzero(adj_after[:, db])[0]
                if alt_in.size:
                    rerouted = (
                        d[np.ix_(rows, alt_in)] + 1.0 == d[rows, db, None]
                    ).any(axis=1)
                    rows = rows[~rerouted]
            cols = np.nonzero(
                np.isfinite(d[db, :]) & (d[da, :] == d[db, :] + 1.0)
            )[0]
            if cols.size:
                alt_out = np.nonzero(adj_after[da, :])[0]
                if alt_out.size:
                    rerouted = (
                        d[np.ix_(alt_out, cols)] + 1.0 == d[da, cols][None, :]
                    ).any(axis=0)
                    cols = cols[~rerouted]
            # Either slice alone is exact; recompute the cheaper one.
            if rows.size <= cols.size:
                if rows.size:
                    cand[rows] = _bfs_rows(adj_after, rows, self.n)
                self.last_affected = int(rows.size)
            else:
                cand[:, cols] = _bfs_rows(adj_after.T, cols, self.n).T
                self.last_affected = int(cols.size)
        finally:
            adj_after[aa, ab] = True

        # -- insertion: one exact vectorized relaxation -----------------
        outer = self._outer
        np.add(cand[:, aa, None] + 1.0, cand[ab, None, :], out=outer)
        np.minimum(cand, outer, out=cand)
        return cand

    def commit(self) -> None:
        """Adopt the last candidate as the committed state."""
        self.dist, self._cand = self._cand, self.dist
