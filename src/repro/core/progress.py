"""Solver-progress recording for Fig. 5 (objective-bounds gap vs time).

Two acquisition modes:

* ``record_progress_bnb`` — run the LatOp formulation on the in-repo
  branch-and-bound backend, which emits
  :class:`~repro.milp.model.ProgressEvent` samples natively (the faithful
  analogue of watching Gurobi's log);
* ``record_progress_scipy`` — sample HiGHS by re-solving with a ladder of
  increasing time limits and reading the final ``mip_gap`` of each run
  (HiGHS through scipy exposes no incremental callbacks).  Coarser but
  tracks the same curve.

The resulting :class:`GapCurve` mirrors Fig. 5's axes: solver time on X,
objective-bounds gap on Y.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..milp import MINIMIZE
from .netsmith import NetSmithConfig, build_distance_formulation


@dataclass
class GapSample:
    time_s: float
    gap: float
    incumbent: Optional[float]


@dataclass
class GapCurve:
    """Objective-bounds-gap trajectory for one configuration."""

    label: str
    samples: List[GapSample] = field(default_factory=list)

    def final_gap(self) -> float:
        return self.samples[-1].gap if self.samples else float("inf")

    def time_to_gap(self, target: float) -> Optional[float]:
        """First time the gap dropped to ``target`` (Fig. 5 readouts)."""
        for s in self.samples:
            if s.gap <= target:
                return s.time_s
        return None

    def series(self):
        x = np.array([s.time_s for s in self.samples])
        y = np.array([s.gap for s in self.samples])
        return x, y


def record_progress_bnb(
    config: NetSmithConfig,
    time_limit: float = 60.0,
    label: Optional[str] = None,
    seed_incumbent: bool = True,
    **solve_kw,
) -> GapCurve:
    """LatOp gap trajectory from the in-repo branch-and-bound solver.

    With ``seed_incumbent`` a quick simulated-annealing pass provides the
    starting incumbent (a MIP start), so the reported gap is finite from
    the first sample and the curve tracks bound tightening — matching how
    Gurobi's log looks once its heuristics find the first solution.
    """
    handles = build_distance_formulation(config, sense=MINIMIZE)
    handles.model.set_objective(handles.total_hops)
    curve = GapCurve(label=label or f"LatOp-{config.link_class}-{config.layout.n}r")
    handles.model.progress_callback = lambda ev: curve.samples.append(
        GapSample(time_s=ev.time_s, gap=ev.gap, incumbent=ev.incumbent)
    )
    if seed_incumbent and "initial_incumbent" not in solve_kw:
        from .search import anneal_topology

        try:
            sa = anneal_topology(config, objective="latency", steps=600, seed=0)
        except ValueError:
            # Best-effort seed only: a diameter bound the short anneal
            # cannot reach (or any other SA infeasibility) must not kill
            # the recording — run unseeded, as before seeding existed.
            pass
        else:
            solve_kw["initial_incumbent"] = sa.objective
    handles.model.solve(backend="bnb", time_limit=time_limit, **solve_kw)
    return curve


def record_progress_scipy(
    config: NetSmithConfig,
    time_points: Sequence[float] = (5.0, 15.0, 30.0, 60.0),
    label: Optional[str] = None,
    **solve_kw,
) -> GapCurve:
    """LatOp gap trajectory sampled via a HiGHS time-limit ladder."""
    curve = GapCurve(label=label or f"LatOp-{config.link_class}-{config.layout.n}r")
    for t in time_points:
        handles = build_distance_formulation(config, sense=MINIMIZE)
        handles.model.set_objective(handles.total_hops)
        res = handles.model.solve(backend="scipy", time_limit=t, **solve_kw)
        gap = res.mip_gap if res.ok else float("inf")
        inc = res.objective if res.ok else None
        curve.samples.append(GapSample(time_s=t, gap=float(gap), incumbent=inc))
        if res.status == "optimal":
            break
    return curve
