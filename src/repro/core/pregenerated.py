"""Frozen NetSmith-generated topologies.

MILP topology generation is minutes-to-hours of solver time (paper
Section III-C); benchmarks and examples should not pay that repeatedly.
This registry freezes the best topologies our own solvers (MILP via
:mod:`repro.core.netsmith`/:mod:`repro.core.scop`, polished by
:mod:`repro.core.search`) have produced for the paper's standard
configurations, exactly as the paper's artifacts would ship the generated
designs.  ``netsmith_topology`` serves frozen designs and falls back to
live generation for unregistered configurations.

Regenerate with ``examples/generate_topologies.py``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..topology import Topology, standard_layout

Link = Tuple[int, int]

#: (kind, link_class, n_routers) -> directed link list.
#: kind is "latop", "scop", or "shufopt".
FROZEN: Dict[Tuple[str, str, int], List[Link]] = {}

_DATA_FILE = os.path.join(os.path.dirname(__file__), "_data", "netsmith.json")


def _load_data_file() -> None:
    """Entries from the generation pass ("kind/class/n" -> links)."""
    if not os.path.exists(_DATA_FILE):
        return
    with open(_DATA_FILE) as fh:
        raw = json.load(fh)
    for key, links in raw.items():
        kind, cls, n = key.split("/")
        FROZEN[(kind, cls, int(n))] = [tuple(l) for l in links]


def register(kind: str, link_class: str, n_routers: int, links: List[Link]) -> None:
    FROZEN[(kind, link_class, n_routers)] = sorted((int(a), int(b)) for a, b in links)


def lookup(kind: str, link_class: str, n_routers: int) -> Optional[List[Link]]:
    return FROZEN.get((kind, link_class, n_routers))


_KIND_LABEL = {"latop": "NS-LatOp", "scop": "NS-SCOp", "shufopt": "NS-ShufOpt"}


#: kind -> the design-pipeline objective it maps to.
_KIND_OBJECTIVE = {"latop": "latency", "scop": "sparsest_cut", "shufopt": "shuffle"}


def netsmith_topology(
    kind: str,
    link_class: str,
    n_routers: int = 20,
    allow_generate: bool = True,
    time_limit: float = 120.0,
    runner=None,
    strategy: Optional[str] = None,
) -> Topology:
    """A NetSmith topology for a named configuration.

    Serves the frozen registry; with ``allow_generate`` unregistered
    configurations (any router count — non-standard sizes get the
    most-square grid) fall back to the design-space pipeline's cached
    ``generation`` stage.  A :class:`~repro.runner.Runner` carrying a
    cache makes the fallback solve/anneal once per configuration across
    runs; without one the generation runs inline and uncached, exactly
    like the direct ``generate_*`` calls it replaces.  ``strategy``
    picks the generation strategy (milp/sa/portfolio); the default is
    the exact solve, matching the historical behaviour.
    """
    if kind not in _KIND_LABEL:
        raise ValueError(f"kind must be latop/scop/shufopt, got {kind!r}")
    layout = standard_layout(n_routers)
    links = lookup(kind, link_class, n_routers)
    name = f"{_KIND_LABEL[kind]}-{link_class}"
    if links is not None:
        return Topology(layout, links, name=name, link_class=link_class)
    if not allow_generate:
        raise KeyError(f"no frozen topology for {(kind, link_class, n_routers)}")

    from ..pipeline import DesignPoint, generate_point

    point = DesignPoint(
        rows=layout.rows,
        cols=layout.cols,
        link_class=link_class,
        objective=_KIND_OBJECTIVE[kind],
        strategy=strategy or "milp",
        # generate_scop budgets per lazy iteration; keep the historical
        # "quarter of the budget per iteration" split.
        time_limit=time_limit / 4 if kind == "scop" else time_limit,
        use_frozen=False,  # the registry was consulted above
    )
    result = generate_point(point, runner=runner)
    topo = result.topology
    return Topology(
        layout, topo.directed_links, name=name, link_class=link_class
    )


# ---------------------------------------------------------------------------
# Registered designs (produced in-repo; see examples/generate_topologies.py)
# ---------------------------------------------------------------------------

register(
    "latop",
    "small",
    20,
    [
        (0, 1), (0, 5), (0, 6), (1, 0), (1, 2), (1, 5), (1, 7), (2, 1),
        (2, 3), (2, 6), (2, 8), (3, 2), (3, 4), (3, 7), (3, 9), (4, 3),
        (4, 9), (5, 0), (5, 1), (5, 10), (5, 11), (6, 0), (6, 2), (6, 10),
        (6, 12), (7, 3), (7, 11), (7, 12), (7, 13), (8, 2), (8, 7), (8, 13),
        (8, 14), (9, 3), (9, 4), (9, 13), (9, 14), (10, 5), (10, 6),
        (10, 15), (10, 16), (11, 5), (11, 7), (11, 15), (11, 16), (12, 6),
        (12, 8), (12, 17), (12, 18), (13, 8), (13, 9), (13, 17), (13, 19),
        (14, 8), (14, 9), (14, 18), (14, 19), (15, 10), (15, 11), (15, 16),
        (16, 10), (16, 12), (16, 15), (16, 17), (17, 11), (17, 13), (17, 16),
        (17, 18), (18, 12), (18, 14), (18, 17), (18, 19), (19, 14), (19, 18),
    ],
)

register(
    "latop",
    "medium",
    20,
    [
        (0, 1), (0, 2), (0, 5), (0, 6), (1, 2), (1, 3), (1, 5), (1, 6),
        (2, 0), (2, 4), (2, 8), (2, 12), (3, 1), (3, 4), (3, 9), (3, 13),
        (4, 2), (4, 3), (4, 8), (4, 14), (5, 1), (5, 7), (5, 10), (5, 15),
        (6, 0), (6, 7), (6, 11), (6, 16), (7, 5), (7, 6), (7, 13), (7, 17),
        (8, 2), (8, 3), (8, 7), (8, 18), (9, 4), (9, 7), (9, 14), (9, 19),
        (10, 0), (10, 6), (10, 12), (10, 15), (11, 1), (11, 13), (11, 16),
        (11, 17), (12, 8), (12, 10), (12, 11), (12, 18), (13, 3), (13, 9),
        (13, 12), (13, 14), (14, 4), (14, 9), (14, 12), (14, 19), (15, 5),
        (15, 10), (15, 16), (15, 17), (16, 10), (16, 11), (16, 15), (16, 18),
        (17, 11), (17, 15), (17, 19), (18, 8), (18, 14), (18, 16), (18, 19),
        (19, 9), (19, 13), (19, 17), (19, 18),
    ],
)

register(
    "latop",
    "large",
    20,
    [
        (0, 1), (0, 2), (0, 6), (0, 10), (1, 0), (1, 7), (1, 11), (1, 12),
        (2, 3), (2, 5), (2, 8), (2, 9), (3, 1), (3, 6), (3, 8), (4, 2),
        (4, 7), (4, 13), (5, 0), (5, 2), (5, 10), (5, 16), (6, 1), (6, 5),
        (6, 13), (6, 17), (7, 1), (7, 2), (7, 6), (7, 18), (8, 3), (8, 9),
        (8, 12), (8, 14), (9, 3), (9, 4), (9, 7), (9, 19), (10, 0), (10, 7),
        (10, 11), (10, 15), (11, 0), (11, 5), (11, 10), (11, 12), (12, 8),
        (12, 14), (12, 15), (12, 18), (13, 3), (13, 4), (13, 14), (13, 16),
        (14, 4), (14, 9), (14, 17), (14, 19), (15, 5), (15, 16), (15, 17),
        (16, 11), (16, 13), (16, 15), (16, 18), (17, 6), (17, 10), (17, 18),
        (17, 19), (18, 9), (18, 11), (18, 16), (18, 17), (19, 8), (19, 12),
        (19, 13), (19, 14),
    ],
)


# The generation pass may add/override entries (e.g. SCOp, ShufOpt, 30/48
# router designs) via the package data file; explicit registrations above
# act as the fallback when the data file is absent.
_load_data_file()
