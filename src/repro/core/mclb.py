"""MCLB: MILP routing to minimize the maximum channel-load bottleneck
(paper Section III-D, Table III).

The formulation receives the statically enumerated set ``P`` of all
minimal paths per flow (paper: Floyd–Warshall, organized as P[s][d]) and
selects exactly one path per flow such that the maximum load over any
channel is minimized:

* O1 — minimize ``Ctotal >= cload[i][j]`` for every channel (the min-max
  trick; the equality half is unnecessary under minimization);
* C1 — ``cload[i][j] = sum of selected paths crossing (i,j)``;
* C4 — one path per flow (special-ordered-set equivalent: the binary
  path indicators of a flow sum to 1).

We use whole-path binaries directly; the paper's C2/C3 (``link_used`` /
``path_used`` products) exist only to *derive* path selection from its
four-dimensional ``flow_load`` primitive, and selecting paths directly is
the tighter equivalent — ``flow_load[s][d][i][j]`` is recovered as the
sum of selected paths of (s,d) crossing (i,j).  Demand weighting and
fractional multi-path extensions are exposed as options, mirroring the
paper's remarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..milp import MINIMIZE, Model, quicksum
from ..routing.paths import Path, PathSet, enumerate_shortest_paths
from ..topology import Topology

Channel = Tuple[int, int]


@dataclass
class MCLBResult:
    """Selected routes plus solve diagnostics."""

    routes: PathSet
    max_channel_load: float
    status: str
    solve_time_s: float
    num_paths_considered: int


def mclb_route(
    topo: Topology,
    path_set: Optional[PathSet] = None,
    weights: Optional[np.ndarray] = None,
    time_limit: Optional[float] = 120.0,
    backend: str = "scipy",
    fractional: bool = False,
    max_paths_per_pair: int = 64,
    **solve_kw,
) -> MCLBResult:
    """Select one minimal path per flow minimizing max channel load.

    ``weights[s, d]`` scales each flow's demand (uniform all-to-all when
    omitted).  ``fractional=True`` relaxes path binaries to [0,1],
    modeling the multi-path/fractional extension the paper mentions.
    """
    if path_set is None:
        path_set = enumerate_shortest_paths(topo, max_paths_per_pair=max_paths_per_pair)
    path_set.validate()

    model = Model(f"mclb-{topo.name}", sense=MINIMIZE)
    # per-(flow, path) selection variables
    sel: Dict[Tuple[Tuple[int, int], int], object] = {}
    per_channel: Dict[Channel, list] = {}
    npaths = 0
    for sd in path_set.pairs():
        w = 1.0 if weights is None else float(weights[sd[0], sd[1]])
        plist = path_set[sd]
        flow_vars = []
        for k, p in enumerate(plist):
            if fractional:
                v = model.add_var(f"p[{sd},{k}]", lb=0.0, ub=1.0)
            else:
                v = model.add_binary(f"p[{sd},{k}]")
            sel[(sd, k)] = v
            flow_vars.append(v)
            npaths += 1
            if w > 0:
                for link in path_set.links_of(p):
                    per_channel.setdefault(link, []).append(w * v)
        # C4: single path per flow
        model.add_constr(quicksum(flow_vars) == 1, name=f"one_path[{sd}]")

    # O1 via min-max: ctotal >= cload for every channel (C1 folded in).
    ctotal = model.add_var("Ctotal", lb=0.0)
    for link, terms in per_channel.items():
        model.add_constr(ctotal >= quicksum(terms), name=f"cload[{link}]")
    model.set_objective(ctotal)

    res = model.solve(backend=backend, time_limit=time_limit, **solve_kw)
    if not res.ok:
        raise RuntimeError(f"MCLB solve failed ({res.status})")

    chosen: Dict[Tuple[int, int], List[Path]] = {}
    for sd in path_set.pairs():
        plist = path_set[sd]
        if fractional:
            # keep the largest-share path as the representative route
            best = max(range(len(plist)), key=lambda k: res.value(sel[(sd, k)]))
        else:
            best = next(
                k for k in range(len(plist)) if res.value(sel[(sd, k)]) > 0.5
            )
        chosen[sd] = [plist[best]]

    routes = PathSet(topology=topo, paths=chosen)
    return MCLBResult(
        routes=routes,
        max_channel_load=float(res.objective),
        status=res.status,
        solve_time_s=res.solve_time_s,
        num_paths_considered=npaths,
    )


@dataclass
class MultipathResult:
    """Fractional multi-path routing (the paper's C4 relaxation remark)."""

    weights: Dict[Tuple[Tuple[int, int], Path], float]  # (flow, path) -> share
    max_channel_load: float
    status: str

    def flow_paths(self, s: int, d: int) -> List[Tuple[Path, float]]:
        return [
            (p, w) for (sd, p), w in self.weights.items() if sd == (s, d) and w > 0
        ]

    def channel_loads(self) -> Dict[Channel, float]:
        loads: Dict[Channel, float] = {}
        for (sd, p), w in self.weights.items():
            if w <= 0:
                continue
            for k in range(len(p) - 1):
                link = (p[k], p[k + 1])
                loads[link] = loads.get(link, 0.0) + w
        return loads


def mclb_route_multipath(
    topo: Topology,
    path_set: Optional[PathSet] = None,
    weights: Optional[np.ndarray] = None,
    time_limit: Optional[float] = 60.0,
    max_paths_per_pair: int = 64,
    min_share: float = 1e-6,
    **solve_kw,
) -> MultipathResult:
    """Optimal *fractional* multi-path MCLB (pure LP, so fast and exact).

    Splits each flow's unit demand across its minimal paths to minimize
    the maximum channel load — the lower bound that single-path MCLB
    approaches, and the config the paper notes C4 'can be modified to
    accommodate'.
    """
    if path_set is None:
        path_set = enumerate_shortest_paths(topo, max_paths_per_pair=max_paths_per_pair)
    path_set.validate()

    model = Model(f"mclb-frac-{topo.name}", sense=MINIMIZE)
    share: Dict[Tuple[Tuple[int, int], Path], object] = {}
    per_channel: Dict[Channel, list] = {}
    for sd in path_set.pairs():
        w = 1.0 if weights is None else float(weights[sd[0], sd[1]])
        flow_vars = []
        for k, p in enumerate(path_set[sd]):
            v = model.add_var(f"f[{sd},{k}]", lb=0.0, ub=1.0)
            share[(sd, p)] = v
            flow_vars.append(v)
            if w > 0:
                for link in path_set.links_of(p):
                    per_channel.setdefault(link, []).append(w * v)
        model.add_constr(quicksum(flow_vars) == 1)
    ctotal = model.add_var("Ctotal", lb=0.0)
    for link, terms in per_channel.items():
        model.add_constr(ctotal >= quicksum(terms))
    model.set_objective(ctotal)
    res = model.solve(time_limit=time_limit, **solve_kw)
    if not res.ok:
        raise RuntimeError(f"fractional MCLB failed ({res.status})")
    out = {
        key: (res.value(v) if res.value(v) > min_share else 0.0)
        for key, v in share.items()
    }
    return MultipathResult(
        weights=out,
        max_channel_load=float(res.objective),
        status=res.status,
    )
