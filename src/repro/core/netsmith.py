"""NetSmith topology generation as MILP (paper Section III, Table I).

The formulation follows Table I:

* ``M(i,j)`` — binary connectivity map over the valid-link set ``L`` (C3);
* ``O(k,j)`` — one-hop distance, the exact affine encoding
  ``BIG - (BIG-1) * M(k,j)`` of the paper's if-then C4;
* ``D(i,j)`` — integer shortest-path distances, constrained to equal
  ``min_k (D(i,k) + O(k,j))`` by the triangle-inequality construction C5
  (upper bounds for every candidate predecessor ``k`` plus big-M
  attainment indicators — the encoding behind Gurobi's min general
  constraint);
* radix (C2), self-adjacency (C1), optional diameter bound (C8) and
  optional link symmetry (C9).

Objectives: **LatOp** minimizes total hops (O1); **SCOp** maximizes the
sparsest-cut bandwidth (O2/C6/C7) via lazy cut generation — see
:mod:`repro.core.scop`; pattern-weighted variants (ShufOpt) minimize a
traffic-weighted hop sum (Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..milp import (
    BINARY,
    INTEGER,
    MAXIMIZE,
    MINIMIZE,
    Model,
    SolveResult,
    Var,
    quicksum,
)
from ..topology import Layout, Topology

#: Default diameter bounds per link class when the caller does not supply
#: one; generous enough to include every Table II topology.
_DEFAULT_DIAMETER = {"small": 8, "medium": 7, "large": 6}


@dataclass
class NetSmithConfig:
    """Inputs to NetSmith's formulation (paper Section III intro).

    ``traffic_weights`` biases the latency objective toward a traffic
    matrix (uniform all-to-all when ``None``); this is how the ShufOpt
    topologies of Section V-E are produced.
    """

    layout: Layout
    link_class: str = "medium"
    radix: int = 4
    symmetric: bool = False  # C9; paper uses asymmetric links by default
    diameter_bound: Optional[int] = None  # C8
    traffic_weights: Optional[np.ndarray] = None
    min_links_per_router: int = 1  # connectivity strengthening cut

    def resolved_diameter(self) -> int:
        if self.diameter_bound is not None:
            return int(self.diameter_bound)
        base = _DEFAULT_DIAMETER.get(self.link_class, 8)
        # larger grids need more headroom
        scale = max(self.layout.rows, self.layout.cols) / 5.0
        return max(base, int(np.ceil(base * scale)))

    def validate(self) -> None:
        """Reject configurations no solver could satisfy.

        Arbitrary grids are first-class, so failure modes that used to
        surface as preset-table KeyErrors must be caught here instead:
        a link class that strands a router, or a radix of zero.
        """
        if self.link_class not in _DEFAULT_DIAMETER:
            raise ValueError(
                f"unknown link class {self.link_class!r} "
                f"(expected one of {sorted(_DEFAULT_DIAMETER)})"
            )
        if self.radix < 1:
            raise ValueError(f"radix must be >= 1, got {self.radix}")
        if self.layout.n < 2:
            raise ValueError(f"layout {self.layout} has fewer than 2 routers")
        if self.min_links_per_router > self.radix:
            raise ValueError(
                f"min_links_per_router {self.min_links_per_router} exceeds "
                f"radix {self.radix}"
            )

    # -- pure-data codecs (runner payloads / cache keys) --------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-clean encoding (`traffic_weights` expanded to lists)."""
        return {
            "layout": [self.layout.rows, self.layout.cols],
            "link_class": self.link_class,
            "radix": int(self.radix),
            "symmetric": bool(self.symmetric),
            "diameter_bound": (
                None if self.diameter_bound is None else int(self.diameter_bound)
            ),
            "traffic_weights": (
                None
                if self.traffic_weights is None
                else np.asarray(self.traffic_weights, dtype=float).tolist()
            ),
            "min_links_per_router": int(self.min_links_per_router),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "NetSmithConfig":
        rows, cols = doc["layout"]
        weights = doc.get("traffic_weights")
        return cls(
            layout=Layout(rows=int(rows), cols=int(cols)),
            link_class=str(doc["link_class"]),
            radix=int(doc.get("radix", 4)),
            symmetric=bool(doc.get("symmetric", False)),
            diameter_bound=(
                None if doc.get("diameter_bound") is None
                else int(doc["diameter_bound"])
            ),
            traffic_weights=(
                None if weights is None else np.asarray(weights, dtype=float)
            ),
            min_links_per_router=int(doc.get("min_links_per_router", 1)),
        )


@dataclass
class FormulationHandles:
    """Variable handles exposed for objective construction and extraction."""

    model: Model
    config: NetSmithConfig
    links: List[Tuple[int, int]]
    m_vars: Dict[Tuple[int, int], Var]
    d_vars: Dict[Tuple[int, int], Var]
    total_hops: object  # LinExpr

    def extract_topology(self, result: SolveResult, name: str = "NetSmith") -> Topology:
        """Read the connectivity map out of a solution."""
        if not result.ok:
            raise ValueError(f"no solution to extract (status={result.status})")
        links = [
            (i, j) for (i, j), v in self.m_vars.items() if result.value(v) > 0.5
        ]
        topo = Topology(
            self.config.layout, links, name=name, link_class=self.config.link_class
        )
        return topo


def build_distance_formulation(config: NetSmithConfig, sense: str = MINIMIZE) -> FormulationHandles:
    """Construct the shared C1–C5/C8/C9 core of every NetSmith variant."""
    layout = config.layout
    n = layout.n
    diam = config.resolved_diameter()
    big_o = diam + 1  # "infinity" for the one-hop distance (C4)
    big_m = 2 * diam + 2  # relaxation constant for attainment lower bounds

    model = Model(f"netsmith-{config.link_class}", sense=sense)
    links = layout.valid_links(config.link_class)
    link_set = set(links)

    m_vars: Dict[Tuple[int, int], Var] = {
        (i, j): model.add_binary(f"M[{i},{j}]") for (i, j) in links
    }

    # C2: router radix, both directions.
    for i in range(n):
        out = [m_vars[(i, j)] for j in range(n) if (i, j) in link_set]
        inc = [m_vars[(j, i)] for j in range(n) if (j, i) in link_set]
        if out:
            model.add_constr(quicksum(out) <= config.radix, name=f"radix_out[{i}]")
            model.add_constr(
                quicksum(out) >= config.min_links_per_router, name=f"deg_out[{i}]"
            )
        if inc:
            model.add_constr(quicksum(inc) <= config.radix, name=f"radix_in[{i}]")
            model.add_constr(
                quicksum(inc) >= config.min_links_per_router, name=f"deg_in[{i}]"
            )

    # C9 (optional): symmetric links.
    if config.symmetric:
        for (i, j) in links:
            if i < j and (j, i) in link_set:
                model.add_constr(
                    m_vars[(i, j)] == m_vars[(j, i)], name=f"sym[{i},{j}]"
                )

    # D variables with C8 diameter bound; D(i,i) = 0 by omission (C1).
    d_vars: Dict[Tuple[int, int], Var] = {}
    for i in range(n):
        for j in range(n):
            if i != j:
                d_vars[(i, j)] = model.add_integer(f"D[{i},{j}]", lb=1, ub=diam)

    def one_hop(k: int, j: int):
        """O(k,j) = 1 if M(k,j) else BIG (exact affine form of C4)."""
        mv = m_vars[(k, j)]
        # big_o - (big_o - 1) * M
        return big_o - (big_o - 1) * mv

    # C5: triangle-inequality min-equality per ordered pair.
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            dij = d_vars[(i, j)]
            preds = [k for k in range(n) if (k, j) in link_set and k != j]
            zs = []
            for k in preds:
                if k == i:
                    term = one_hop(i, j)  # D(i,i)=0: direct-link special case
                else:
                    term = d_vars[(i, k)] + one_hop(k, j)
                model.add_constr(dij <= term, name=f"tri_ub[{i},{j},{k}]")
                z = model.add_binary(f"tri_z[{i},{j},{k}]")
                model.add_constr(
                    dij >= term - big_m * (1 - z), name=f"tri_lb[{i},{j},{k}]"
                )
                zs.append(z)
            if not zs:
                raise ValueError(
                    f"router {j} has no valid incoming links under class "
                    f"{config.link_class!r}"
                )
            model.add_constr(quicksum(zs) >= 1, name=f"tri_attain[{i},{j}]")
            # Strengthening: without a direct link, the distance is >= 2.
            if (i, j) in link_set:
                model.add_constr(dij >= 2 - m_vars[(i, j)], name=f"cut2[{i},{j}]")
            else:
                model.add_constr(dij >= 2, name=f"cut2[{i},{j}]")

    weights = config.traffic_weights
    if weights is None:
        total = quicksum(d_vars.values())
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n, n):
            raise ValueError(f"traffic_weights must be {n}x{n}")
        total = quicksum(
            w * d_vars[(i, j)]
            for (i, j), w in np.ndenumerate(weights)
            if i != j and w > 0
        )

    return FormulationHandles(
        model=model,
        config=config,
        links=links,
        m_vars=m_vars,
        d_vars=d_vars,
        total_hops=total,
    )


@dataclass
class GenerationResult:
    """A generated topology plus solve diagnostics."""

    topology: Topology
    objective: float
    mip_gap: float
    status: str
    solve_time_s: float
    result: SolveResult = field(repr=False, default=None)

    @property
    def proven_optimal(self) -> bool:
        return self.status == "optimal"


def generate_latop(
    config: NetSmithConfig,
    time_limit: Optional[float] = 60.0,
    backend: str = "scipy",
    name: Optional[str] = None,
    **solve_kw,
) -> GenerationResult:
    """Generate a latency-optimized (LatOp) topology (objective O1).

    Minimizes total pair distance ``sum_{s,d} D(s,d)``; with
    ``config.traffic_weights`` set, minimizes the weighted sum instead
    (the ShufOpt mode of Section V-E).
    """
    handles = build_distance_formulation(config, sense=MINIMIZE)
    handles.model.set_objective(handles.total_hops)
    res = handles.model.solve(backend=backend, time_limit=time_limit, **solve_kw)
    if not res.ok:
        raise RuntimeError(
            f"LatOp solve failed ({res.status}); raise the time limit"
        )
    label = name or f"NS-LatOp-{config.link_class}"
    topo = handles.extract_topology(res, name=label)
    topo.check(radix=config.radix, link_class=config.link_class)
    return GenerationResult(
        topology=topo,
        objective=float(res.objective),
        mip_gap=res.mip_gap,
        status=res.status,
        solve_time_s=res.solve_time_s,
        result=res,
    )


def shuffle_weights(layout: Layout, uniform_floor: float = 0.05) -> np.ndarray:
    """Traffic weights for gem5's *shuffle* pattern (paper Section V-E).

    ``dest = 2*src`` for the low half, ``(2*src + 1) mod n`` for the high
    half.  A small uniform floor keeps all-pairs distances meaningful so
    the generated network still serves background traffic.
    """
    n = layout.n
    w = np.full((n, n), uniform_floor)
    np.fill_diagonal(w, 0.0)
    for src in range(n):
        if src < n // 2:
            dest = 2 * src
        else:
            dest = (2 * src + 1) % n
        if dest != src:
            w[src, dest] += 1.0
    return w


def generate_shufopt(
    config: NetSmithConfig,
    time_limit: Optional[float] = 60.0,
    backend: str = "scipy",
    **solve_kw,
) -> GenerationResult:
    """Generate the shuffle-pattern-optimized topology ("NS ShufOpt")."""
    cfg = NetSmithConfig(
        layout=config.layout,
        link_class=config.link_class,
        radix=config.radix,
        symmetric=config.symmetric,
        diameter_bound=config.diameter_bound,
        traffic_weights=shuffle_weights(config.layout),
        min_links_per_router=config.min_links_per_router,
    )
    out = generate_latop(
        cfg,
        time_limit=time_limit,
        backend=backend,
        name=f"NS-ShufOpt-{config.link_class}",
        **solve_kw,
    )
    return out
