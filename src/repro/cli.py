"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's pipeline:

* ``generate`` — discover a topology (LatOp/SCOp/ShufOpt/SA) and save it;
* ``evaluate`` — Table II-style metrics for a saved or named topology;
* ``route``    — MCLB/NDBT route a topology, report channel loads + VCs;
* ``simulate`` — latency/throughput sweep under a traffic pattern;
* ``explore``  — design-space sweep: generate/route/evaluate a grid of
  design points (arbitrary layouts) through the cached pipeline and
  rank them;
* ``run``      — named paper experiments through the parallel runner;
* ``report``   — regenerate the paper's experiment report (EXPERIMENTS-style).

``simulate``, ``run``, and ``report`` accept the runner flags
``--parallel N`` (fan sim points across N worker processes; 0 = all
cores), ``--cache-dir PATH`` (on-disk result cache location, default
``$REPRO_CACHE_DIR`` or ``.repro-cache``), ``--no-cache`` (bypass the
cache entirely), and ``--engine fast|reference|turbo`` (the default
fast engine — flat arrays, pre-generated vectorized traffic traces, one
compiled network shared per routed topology — the reference oracle
with identical results, or the batched turbo engine: statistically
validated against the reference rather than bit-exact, and without
fault-schedule support).  ``simulate`` additionally takes ``--seeds N``
(N seed replicas per rate, advanced together by the batched
multi-replica engine, reported as mean +- 95% CI) and ``--batch``
(force the batched path for a single seed).  The flags cover the
open-loop sweeps
(fig6/7/10/11) and the full-system closed-loop PARSEC sweep (``repro
run fig8``), whose (benchmark, topology) runs fan out and cache the
same way.  Results are bit-identical at any worker count; a cached
rerun skips simulation outright.

Execution is supervised: ``--task-timeout SEC`` bounds each task
attempt's wall clock, ``--task-retries N`` bounds retries for transient
failures/hangs/worker crashes, and ``--health`` prints the supervision
report (retries, timeouts, pool restarts, quarantines, cache
evictions).  A run with quarantined tasks prints a per-cell failure
table and exits with status 2; a SIGINT-killed run resumes exactly from
the sweep journal.  See ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional


def _load_or_named(spec: str, n_routers: int):
    """A topology from a JSON file path, an expert name, or ``ns:<kind>:<class>``."""
    from .core.pregenerated import netsmith_topology
    from .topology import expert_topology, load
    from .topology.expert import EXPERT_FAMILIES

    if spec.endswith(".json"):
        return load(spec)
    if spec.startswith("ns:"):
        _, kind, cls = spec.split(":")
        return netsmith_topology(kind, cls, n_routers)
    if spec in EXPERT_FAMILIES:
        return expert_topology(spec, n_routers)
    raise SystemExit(
        f"unknown topology {spec!r}: use a .json path, an expert name "
        f"({sorted(EXPERT_FAMILIES)}), or ns:<latop|scop|shufopt>:<class>"
    )


def cmd_generate(args) -> int:
    from .core import (
        NetSmithConfig,
        anneal_topology,
        generate_latop,
        generate_scop,
        generate_shufopt,
    )
    from .topology import Layout, ascii_art, save

    layout = Layout(rows=args.rows, cols=args.cols)
    cfg = NetSmithConfig(
        layout=layout,
        link_class=args.link_class,
        radix=args.radix,
        symmetric=args.symmetric,
        diameter_bound=args.diameter,
    )
    if args.objective == "latency":
        result = generate_latop(cfg, time_limit=args.time_limit)
    elif args.objective == "sparsest-cut":
        result, _ = generate_scop(cfg, time_limit=args.time_limit / 4)
    elif args.objective == "shuffle":
        result = generate_shufopt(cfg, time_limit=args.time_limit)
    else:  # sa
        result = anneal_topology(cfg, objective="latency", steps=args.sa_steps)
    topo = result.topology
    print(ascii_art(topo))
    print(f"objective={result.objective:.2f} status={result.status}")
    if args.out:
        save(topo, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    from .topology import summarize

    topo = _load_or_named(args.topology, args.routers)
    s = summarize(topo, exact=topo.n <= 22)
    print(f"{'topology':<20} {s.name}")
    print(f"{'links':<20} {s.num_links}")
    print(f"{'diameter':<20} {s.diameter}")
    print(f"{'avg hops':<20} {s.avg_hops:.3f}")
    print(f"{'bisection BW':<20} {s.bisection_bw}")
    print(f"{'sparsest cut':<20} {s.sparsest_cut_value:.4f}")
    return 0


def cmd_route(args) -> int:
    from .core import mclb_route
    from .routing import assign_vcs, build_routing_table, channel_loads, ndbt_route

    topo = _load_or_named(args.topology, args.routers)
    if args.policy == "mclb":
        routes = mclb_route(topo, time_limit=args.time_limit).routes
    else:
        routes = ndbt_route(topo, seed=args.seed)
    loads = channel_loads(routes)
    vca = assign_vcs(routes, seed=args.seed)
    table = build_routing_table(routes, vca)
    table.validate()
    print(f"policy={args.policy} max_load={loads.max_load} "
          f"mean_load={loads.mean_load:.2f} vcs={vca.num_vcs}")
    print(f"saturation bound: {loads.saturation_injection(topo.n):.3f} "
          f"flits/node/cycle")
    return 0


def _make_runner(args):
    from .runner import Runner, TaskRetryPolicy

    retry = None
    task_timeout = getattr(args, "task_timeout", None)
    task_retries = getattr(args, "task_retries", None)
    if task_timeout is not None or task_retries is not None:
        default = TaskRetryPolicy()
        retry = TaskRetryPolicy(
            timeout=task_timeout,
            retries=default.retries if task_retries is None else task_retries,
        )
    return Runner(
        parallel=args.parallel,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        engine=getattr(args, "engine", "fast"),
        retry=retry,
    )


def _failure_table(failures) -> str:
    """One row per quarantined task: what failed, how, after how many tries."""
    lines = [f"{'task':<12} {'kind':<8} {'attempts':>8}  {'payload':<14} error"]
    for f in failures:
        err = (f.error or "").splitlines()[0] if f.error else ""
        lines.append(
            f"{(f.task or '?'):<12} {f.kind:<8} {f.attempts:>8}  "
            f"{f.payload_hash[:12]:<14} {err[:80]}"
        )
    return "\n".join(lines)


def _report_quarantine(runner, exc=None) -> None:
    failures = runner.failures or (list(exc.failures) if exc is not None else [])
    print(
        f"\n{len(failures)} task(s) quarantined after exhausting retries"
        + (
            " (failure artifacts under the cache's failures/ directory):"
            if runner.cache is not None else ":"
        ),
        file=sys.stderr,
    )
    print(_failure_table(failures), file=sys.stderr)


def _print_health(runner, args) -> None:
    if getattr(args, "health", False):
        print(runner.health.summary(), file=sys.stderr)


#: ``simulate --traffic`` choices (all synthetic generators in repro.sim).
TRAFFIC_CHOICES = (
    "uniform", "memory", "shuffle", "bit_complement",
    "transpose", "tornado", "neighbor", "hotspot",
)


def _traffic_spec(args, topo):
    """Build the TrafficSpec named by ``--traffic`` for a topology."""
    from .runner import TrafficSpec

    kind = args.traffic
    if kind == "uniform":
        return TrafficSpec.uniform(topo.n)
    if kind == "memory":
        return TrafficSpec.memory(topo.layout)
    if kind == "shuffle":
        return TrafficSpec.shuffle(topo.n)
    if kind == "bit_complement":
        return TrafficSpec.bit_complement(topo.n)
    if kind == "transpose":
        return TrafficSpec.transpose(topo.layout)
    if kind == "tornado":
        return TrafficSpec.tornado(topo.layout)
    if kind == "neighbor":
        return TrafficSpec.neighbor(topo.layout)
    if kind == "hotspot":
        if args.hotspots:
            try:
                spots = tuple(int(h) for h in args.hotspots.split(","))
            except ValueError:
                raise SystemExit(
                    f"--hotspots must be a comma-separated router list, "
                    f"got {args.hotspots!r}"
                )
            bad = [h for h in spots if not 0 <= h < topo.n]
            if bad:
                raise SystemExit(
                    f"--hotspots routers {bad} outside [0, {topo.n}) for "
                    f"this {topo.n}-router topology"
                )
        else:
            spots = tuple(topo.layout.mc_routers())
        return TrafficSpec.hotspot(topo.n, spots, args.hot_fraction)
    raise SystemExit(f"unknown traffic pattern {kind!r}")


def cmd_simulate(args) -> int:
    from .experiments.registry import routed_table

    topo = _load_or_named(args.topology, args.routers)
    table = routed_table(topo, args.policy, seed=args.seed, use_cache=False)
    spec = _traffic_spec(args, topo)
    if args.burst:
        from .sim import parse_burst

        try:
            spec = spec.with_burst(parse_burst(args.burst))
        except ValueError as exc:
            raise SystemExit(str(exc))
    faults = None
    if args.faults:
        from .faults import parse_faults

        try:
            faults = parse_faults(args.faults)
            faults.validate(topo)
        except ValueError as exc:
            raise SystemExit(str(exc))
    rates = [args.max_rate * (k + 1) / args.points for k in range(args.points)]
    n_seeds = max(1, args.seeds)
    use_batch = args.batch or n_seeds > 1
    if faults is not None and args.engine == "turbo":
        raise SystemExit(
            "--engine turbo does not support --faults; use the exact "
            "engines (fast/reference) for degraded networks"
        )
    if faults is not None and use_batch:
        raise SystemExit(
            "--seeds/--batch route the sweep through the batched engine, "
            "which does not support --faults; drop one or the other"
        )
    runner = _make_runner(args)
    from .runner import QuarantineError

    try:
        if use_batch:
            mode = "turbo" if args.engine == "turbo" else "exact"
            seeds = [args.seed + k for k in range(n_seeds)]
            curves = runner.multi_seed_curves(
                table, spec, rates, seeds,
                link_class=args.link_class or topo.link_class,
                warmup=args.warmup, measure=args.measure, mode=mode,
            )
            curve = curves[seeds[0]]
        else:
            curve = runner.curve(
                table, spec, rates,
                link_class=args.link_class or topo.link_class,
                warmup=args.warmup, measure=args.measure, seed=args.seed,
                faults=faults,
            )
    except QuarantineError as exc:
        _report_quarantine(runner, exc)
        _print_health(runner, args)
        return 2
    if n_seeds > 1:
        from .sim import summarize_replicas

        print(f"{'offered':>8} {'latency(cyc)':>21} {'accepted':>19} {'n':>3}")
        for rp in summarize_replicas(curves):
            lat = ("saturated".rjust(21)
                   if rp.latency_mean != rp.latency_mean  # NaN: no finite lanes
                   else f"{rp.latency_mean:12.1f} +- {rp.latency_ci95:5.1f}")
            print(f"{rp.offered_rate:8.3f} {lat} "
                  f"{rp.throughput_mean:10.3f} +- {rp.throughput_ci95:5.3f} "
                  f"{rp.n_replicas:3d}")
        sats = [c.saturation_throughput_ns for c in curves.values()]
        mean_sat = sum(sats) / len(sats)
        spread = max(sats) - min(sats)
        print(f"saturation throughput: {mean_sat:.3f} packets/node/ns "
              f"(spread {spread:.3f} over {n_seeds} seeds) "
              f"@ {curve.clock_ghz} GHz")
    else:
        print(f"{'offered':>8} {'latency(cyc)':>13} {'accepted':>9} {'saturated':>9}")
        for p in curve.points:
            print(f"{p.offered_rate:8.3f} {p.avg_latency_cycles:13.1f} "
                  f"{p.throughput_packets_node_cycle:9.3f} {str(p.saturated):>9}")
        print(f"saturation throughput: {curve.saturation_throughput_ns:.3f} "
              f"packets/node/ns @ {curve.clock_ghz} GHz")
    if not args.no_cache:
        print(runner.stats.summary(), file=sys.stderr)
    _print_health(runner, args)
    return 0


def cmd_explore(args) -> int:
    from .pipeline import OBJECTIVES, design_grid, explore
    from .topology import LINK_CLASSES

    layouts = [g.strip() for g in args.grids.split(",") if g.strip()]
    link_classes = [c.strip() for c in args.link_classes.split(",") if c.strip()]
    objectives = [o.strip() for o in args.objectives.split(",") if o.strip()]
    bad = [c for c in link_classes if c not in LINK_CLASSES]
    if bad:
        raise SystemExit(
            f"unknown link class(es) {bad}: use {', '.join(LINK_CLASSES)}"
        )
    bad = [o for o in objectives if o not in OBJECTIVES]
    if bad:
        raise SystemExit(f"unknown objective(s) {bad}: use {', '.join(OBJECTIVES)}")
    cluster_rows = cluster_cols = None
    if args.cluster:
        try:
            from .topology import parse_layout

            cl = parse_layout(args.cluster)
            cluster_rows, cluster_cols = cl.rows, cl.cols
        except ValueError as exc:
            raise SystemExit(f"--cluster: {exc}")
    try:
        points = design_grid(
            layouts,
            link_classes=link_classes,
            objectives=objectives,
            strategies=(args.strategy,),
            seeds=range(args.seeds),
            radix=args.radix,
            diameter_bound=args.diameter,
            time_limit=args.time_limit,
            sa_steps=args.sa_steps,
            max_iterations=args.max_iterations,
            backend=args.backend,
            use_frozen=not args.no_frozen,
            cluster_rows=cluster_rows,
            cluster_cols=cluster_cols,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"exploring {len(points)} design points "
        f"({len(layouts)} layouts x {len(link_classes)} classes x "
        f"{len(objectives)} objectives x {args.seeds} seed(s), "
        f"strategy={args.strategy})",
        file=sys.stderr,
    )
    from .pipeline.stages import SIM_CUTOFF

    sim_cutoff = (
        0 if args.no_simulate
        else SIM_CUTOFF if args.sim_cutoff is None
        else args.sim_cutoff
    )
    runner = _make_runner(args)
    from .runner import QuarantineError

    try:
        result = explore(
            points,
            runner=runner,
            policy=args.policy,
            eval_warmup=args.warmup,
            eval_measure=args.measure,
            eval_iters=args.iters,
            out_dir=args.out_dir or None,
            rank_by=args.rank_by,
            robustness=args.robustness,
            sim_cutoff=sim_cutoff,
        )
    except QuarantineError as exc:
        _report_quarantine(runner, exc)
        _print_health(runner, args)
        return 2
    except (ValueError, RuntimeError) as exc:
        # Point validation (bad radix/objective combos) and
        # all-strategies-failed sweeps get the same clean one-line
        # surface as argument errors, not a traceback.
        raise SystemExit(str(exc))
    print(result.format_table(by=args.rank_by))
    best = result.best(by=args.rank_by)
    if best is not None:
        print(f"\nbest ({args.rank_by}): {best.point.label()} -> {best.name}")
    if args.out_dir:
        print(f"[artifacts in {args.out_dir}]", file=sys.stderr)
    if not args.no_cache:
        print(runner.stats.summary(), file=sys.stderr)
    _print_health(runner, args)
    return 0


def _retry_policy(args):
    """The recovery experiment's RetryPolicy from --timeout/--retries/
    --backoff; None when no flag was given (the experiment default)."""
    flags = (
        getattr(args, "timeout", None),
        getattr(args, "retries", None),
        getattr(args, "backoff", None),
    )
    if all(f is None for f in flags):
        return None
    from .experiments.recovery import DEFAULT_RETRY
    from .fullsys.closedloop import RetryPolicy

    timeout, retries, backoff = flags
    return RetryPolicy(
        timeout=DEFAULT_RETRY.timeout if timeout is None else timeout,
        retries=DEFAULT_RETRY.retries if retries is None else retries,
        backoff=DEFAULT_RETRY.backoff if backoff is None else backoff,
        seed=DEFAULT_RETRY.seed,
    )


def cmd_run(args) -> int:
    import time

    from .experiments.registry import get_experiment, list_experiments

    if args.experiment == "list":
        print(f"{'experiment':<16} description")
        for name, desc in list_experiments():
            print(f"{name:<16} {desc}")
        print()
        print("sim engines: fast (default) | reference | turbo  (--engine)")
        print(f"simulate traffic patterns: {', '.join(TRAFFIC_CHOICES)}")
        return 0
    runner = _make_runner(args)
    names = (
        # `report` re-renders the fig6/fig7 sections the individual
        # experiments already produce, so `all` leaves it out.
        [name for name, _ in list_experiments() if name != "report"]
        if args.experiment == "all"
        else [args.experiment]
    )
    chunks = []
    for name in names:
        try:
            spec = get_experiment(name)
        except KeyError as exc:
            raise SystemExit(exc.args[0])
        t0 = time.time()
        kw = {}
        if name == "recovery":
            retry = _retry_policy(args)
            if retry is not None:
                kw["retry"] = retry
        from .runner import QuarantineError

        try:
            result = spec.run(runner, fast=not args.full, **kw)
        except QuarantineError as exc:
            # The wave finished (successes are cached) but some cell's
            # task exhausted its retries: report and fail loudly rather
            # than summarizing a partial experiment as success.
            print(f"[{name}: FAILED after {time.time() - t0:.1f}s]",
                  file=sys.stderr)
            _report_quarantine(runner, exc)
            if not args.no_cache:
                print(runner.stats.summary(), file=sys.stderr)
            _print_health(runner, args)
            return 2
        text = spec.summarize(result)
        chunks.append(text)
        print(text)
        print(f"[{name}: {time.time() - t0:.1f}s, "
              f"{runner.parallel} worker(s)]", file=sys.stderr)
    if not args.no_cache:
        print(runner.stats.summary(), file=sys.stderr)
    _print_health(runner, args)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"[written to {args.out}]", file=sys.stderr)
    if runner.failures:
        # Failure-isolating experiments (quarantine="return") can finish
        # with quarantined cells; that is still a failed run.
        _report_quarantine(runner)
        return 2
    return 0


def cmd_report(args) -> int:
    from .experiments.report import generate_report
    from .runner import QuarantineError

    runner = _make_runner(args)
    try:
        text = generate_report(fast=not args.full, runner=runner)
    except QuarantineError as exc:
        _report_quarantine(runner, exc)
        _print_health(runner, args)
        return 2
    print(text)
    if not args.no_cache:
        print(runner.stats.summary(), file=sys.stderr)
    _print_health(runner, args)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"\n[written to {args.out}]", file=sys.stderr)
    return 0


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    """The shared runner/cache surface (see docs/CLI.md)."""
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="worker processes for independent sim points "
             "(1 = serial, 0 = all cores); results are identical either way",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache location "
             "(default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache: recompute everything, store nothing",
    )
    parser.add_argument(
        "--engine", choices=("fast", "reference", "turbo"), default="fast",
        help="simulation engine for open-loop sweeps and closed-loop "
             "full-system runs: the fast engine (default; flat arrays, "
             "pre-generated traffic traces, compiled-network reuse), the "
             "reference oracle (bit-identical to fast), or the batched "
             "turbo engine (statistically validated against the "
             "reference, not bit-exact; no --faults support)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="wall-clock budget per task attempt; a task past it is "
             "treated as hung — the worker pool restarts and the task "
             "retries (default: unbounded)",
    )
    parser.add_argument(
        "--task-retries", type=int, default=None, metavar="N",
        help="retry budget per task for transient failures, timeouts, "
             "and worker crashes; a payload that exhausts it is "
             "quarantined with a failure artifact and the run exits "
             "non-zero (default 2)",
    )
    parser.add_argument(
        "--health", action="store_true",
        help="print the execution-health report (retries, timeouts, "
             "pool restarts, quarantined tasks, cache corruption "
             "evictions, journal resume counts) after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="discover a topology")
    g.add_argument("--rows", type=int, default=4)
    g.add_argument("--cols", type=int, default=5)
    g.add_argument("--link-class", choices=("small", "medium", "large"),
                   default="medium")
    g.add_argument("--radix", type=int, default=4)
    g.add_argument("--objective",
                   choices=("latency", "sparsest-cut", "shuffle", "sa"),
                   default="latency")
    g.add_argument("--symmetric", action="store_true")
    g.add_argument("--diameter", type=int, default=None)
    g.add_argument("--time-limit", type=float, default=120.0)
    g.add_argument("--sa-steps", type=int, default=8000)
    g.add_argument("--out", default=None, help="save topology JSON here")
    g.set_defaults(fn=cmd_generate)

    e = sub.add_parser("evaluate", help="Table II metrics for a topology")
    e.add_argument("topology")
    e.add_argument("--routers", type=int, default=20)
    e.set_defaults(fn=cmd_evaluate)

    r = sub.add_parser("route", help="route a topology and report loads")
    r.add_argument("topology")
    r.add_argument("--routers", type=int, default=20)
    r.add_argument("--policy", choices=("mclb", "ndbt"), default="mclb")
    r.add_argument("--time-limit", type=float, default=60.0)
    r.add_argument("--seed", type=int, default=0)
    r.set_defaults(fn=cmd_route)

    s = sub.add_parser("simulate", help="latency/throughput sweep")
    s.add_argument("topology")
    s.add_argument("--routers", type=int, default=20)
    s.add_argument("--policy", choices=("mclb", "ndbt"), default="ndbt")
    s.add_argument("--traffic", choices=TRAFFIC_CHOICES, default="uniform")
    s.add_argument("--hotspots", default=None, metavar="R1,R2,...",
                   help="hotspot routers for --traffic hotspot "
                        "(default: the MC columns)")
    s.add_argument("--hot-fraction", type=float, default=0.5,
                   help="fraction of hotspot traffic aimed at --hotspots")
    s.add_argument("--burst", default=None, metavar="SPEC",
                   help="bursty modulation of the traffic pattern: "
                        "KIND[:p_on,p_off[,on_scale|auto[,off_scale[,seed]]]] "
                        "with KIND mmpp (per-node on/off chains) or storm "
                        "(one global chain), e.g. mmpp:0.1,0.3")
    s.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault schedule CYCLE:KIND:TARGET[,...] with KIND "
                        "link_down/link_up (TARGET u-v, full duplex) or "
                        "router_down/router_up (TARGET router id), e.g. "
                        "500:link_down:2-7,1500:link_up:2-7")
    s.add_argument("--link-class", default=None)
    s.add_argument("--max-rate", type=float, default=0.4)
    s.add_argument("--points", type=int, default=8)
    s.add_argument("--warmup", type=int, default=300)
    s.add_argument("--measure", type=int, default=1200)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--seeds", type=int, default=1, metavar="N",
                   help="seed replicas per rate (seeds SEED..SEED+N-1); "
                        "N>1 runs every replica through the batched "
                        "multi-replica engine in fused seed x rate waves "
                        "and prints mean +- 95%% CI per rate "
                        "(incompatible with --faults)")
    s.add_argument("--batch", action="store_true",
                   help="route the sweep through the batched engine even "
                        "for a single seed (exact mode unless --engine "
                        "turbo; incompatible with --faults)")
    _add_runner_flags(s)
    s.set_defaults(fn=cmd_simulate)

    ex = sub.add_parser(
        "explore",
        help="design-space sweep over arbitrary layouts",
        description="Sweep a grid of design points (layouts x link "
                    "classes x objectives x seeds) through the staged "
                    "generate/route/evaluate pipeline, rank the results, "
                    "and write per-point artifacts. Every stage is cached "
                    "runner work: an interrupted sweep resumes, and an "
                    "immediate re-run is 100%% cache hits.",
    )
    ex.add_argument("--grids", default="4x5,6x5,6x6", metavar="RxC,...",
                    help="comma-separated grid shapes (default 4x5,6x5,6x6)")
    ex.add_argument("--link-classes", default="small,medium",
                    metavar="CLS,...", help="subset of small,medium,large")
    ex.add_argument("--objectives", default="latency,shuffle",
                    metavar="OBJ,...",
                    help="subset of latency,sparsest_cut,shuffle "
                         "(sparsest_cut is skipped above 22 routers)")
    ex.add_argument("--strategy",
                    choices=("milp", "sa", "portfolio", "hierarchical"),
                    default="sa",
                    help="generation strategy; portfolio = SA + exact "
                         "solve with best-wins merge (warm-started from "
                         "the SA result where --backend can consume it); "
                         "hierarchical = exact clusters + annealed "
                         "stitching, for 256-1024-router grids")
    ex.add_argument("--cluster", default=None, metavar="RxC",
                    help="cluster tile shape for --strategy hierarchical "
                         "(must divide the grid; default: auto divisors "
                         "near 4 per side)")
    ex.add_argument("--backend", choices=("scipy", "bnb"), default="scipy",
                    help="exact-solve backend: scipy (HiGHS, fast, no "
                         "MIP-start surface) or bnb (in-repo branch-and-"
                         "bound; portfolio seeds its initial incumbent "
                         "from the SA result)")
    ex.add_argument("--seeds", type=int, default=1,
                    help="number of generation seeds per configuration")
    ex.add_argument("--radix", type=int, default=4)
    ex.add_argument("--diameter", type=int, default=None)
    ex.add_argument("--time-limit", type=float, default=30.0,
                    help="exact-solve budget per point (seconds)")
    ex.add_argument("--sa-steps", type=int, default=1500)
    ex.add_argument("--max-iterations", type=int, default=6,
                    help="SCOp lazy-cut iteration cap")
    ex.add_argument("--no-frozen", action="store_true",
                    help="ignore the frozen registry even for standard "
                         "configurations")
    ex.add_argument("--policy", choices=("mclb", "ndbt", "bfs"),
                    default="mclb",
                    help="routing policy; bfs = destination-tree routing "
                         "compiled to sparse CSR tables, the only policy "
                         "that scales to 256+ routers")
    ex.add_argument("--sim-cutoff", type=int, default=None, metavar="N",
                    help="largest router count given a cycle-accurate "
                         "saturation search; larger points rank on exact "
                         "graph metrics only (default 128)")
    ex.add_argument("--no-simulate", action="store_true",
                    help="skip all saturation searches (rank the whole "
                         "sweep on exact graph metrics; shorthand for "
                         "--sim-cutoff 0)")
    ex.add_argument("--warmup", type=int, default=250)
    ex.add_argument("--measure", type=int, default=800)
    ex.add_argument("--iters", type=int, default=5,
                    help="saturation binary-search iterations")
    ex.add_argument("--rank-by",
                    choices=("saturation", "hops", "cut", "robustness"),
                    default="saturation")
    ex.add_argument("--robustness", action="store_true",
                    help="also measure retained capacity under the "
                         "most-central link fault per point (implied by "
                         "--rank-by robustness)")
    ex.add_argument("--out-dir", default="explore-artifacts", metavar="PATH",
                    help="per-point artifact directory ('' disables)")
    _add_runner_flags(ex)
    ex.set_defaults(fn=cmd_explore)

    run = sub.add_parser(
        "run",
        help="run a named paper experiment through the parallel runner",
        description="Run one of the registered experiments (or 'all'); "
                    "'repro run list' shows what is available. Sim points "
                    "fan out over --parallel workers and land in the "
                    "on-disk cache, so reruns are incremental.",
    )
    run.add_argument("experiment",
                     help="experiment name, 'all', or 'list'")
    run.add_argument("--full", action="store_true",
                     help="full-budget sweeps (slow)")
    run.add_argument("--out", default=None, help="also write summaries here")
    run.add_argument("--timeout", type=int, default=None, metavar="CYCLES",
                     help="[recovery] request timeout before a retry fires "
                          "(default 192; must clear the congested "
                          "steady-state round trip or retransmissions "
                          "amplify into congestion collapse)")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="[recovery] retry budget per request; a request "
                          "that exhausts it counts as failed (default 6)")
    run.add_argument("--backoff", type=int, default=None, metavar="CYCLES",
                     help="[recovery] exponential-backoff base delay "
                          "between attempts (default 16)")
    _add_runner_flags(run)
    run.set_defaults(fn=cmd_run)

    rep = sub.add_parser("report", help="regenerate the experiment report")
    rep.add_argument("--full", action="store_true",
                     help="full-budget sweeps (slow)")
    rep.add_argument("--out", default=None)
    _add_runner_flags(rep)
    rep.set_defaults(fn=cmd_report)
    return p


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
