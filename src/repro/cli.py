"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's pipeline:

* ``generate`` — discover a topology (LatOp/SCOp/ShufOpt/SA) and save it;
* ``evaluate`` — Table II-style metrics for a saved or named topology;
* ``route``    — MCLB/NDBT route a topology, report channel loads + VCs;
* ``simulate`` — latency/throughput sweep under a traffic pattern;
* ``report``   — regenerate the paper's experiment report (EXPERIMENTS-style).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional


def _load_or_named(spec: str, n_routers: int):
    """A topology from a JSON file path, an expert name, or ``ns:<kind>:<class>``."""
    from .core.pregenerated import netsmith_topology
    from .topology import expert_topology, load
    from .topology.expert import EXPERT_FAMILIES

    if spec.endswith(".json"):
        return load(spec)
    if spec.startswith("ns:"):
        _, kind, cls = spec.split(":")
        return netsmith_topology(kind, cls, n_routers)
    if spec in EXPERT_FAMILIES:
        return expert_topology(spec, n_routers)
    raise SystemExit(
        f"unknown topology {spec!r}: use a .json path, an expert name "
        f"({sorted(EXPERT_FAMILIES)}), or ns:<latop|scop|shufopt>:<class>"
    )


def cmd_generate(args) -> int:
    from .core import (
        NetSmithConfig,
        anneal_topology,
        generate_latop,
        generate_scop,
        generate_shufopt,
    )
    from .topology import Layout, ascii_art, save

    layout = Layout(rows=args.rows, cols=args.cols)
    cfg = NetSmithConfig(
        layout=layout,
        link_class=args.link_class,
        radix=args.radix,
        symmetric=args.symmetric,
        diameter_bound=args.diameter,
    )
    if args.objective == "latency":
        result = generate_latop(cfg, time_limit=args.time_limit)
    elif args.objective == "sparsest-cut":
        result, _ = generate_scop(cfg, time_limit=args.time_limit / 4)
    elif args.objective == "shuffle":
        result = generate_shufopt(cfg, time_limit=args.time_limit)
    else:  # sa
        result = anneal_topology(cfg, objective="latency", steps=args.sa_steps)
    topo = result.topology
    print(ascii_art(topo))
    print(f"objective={result.objective:.2f} status={result.status}")
    if args.out:
        save(topo, args.out)
        print(f"saved to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    from .topology import summarize

    topo = _load_or_named(args.topology, args.routers)
    s = summarize(topo, exact=topo.n <= 22)
    print(f"{'topology':<20} {s.name}")
    print(f"{'links':<20} {s.num_links}")
    print(f"{'diameter':<20} {s.diameter}")
    print(f"{'avg hops':<20} {s.avg_hops:.3f}")
    print(f"{'bisection BW':<20} {s.bisection_bw}")
    print(f"{'sparsest cut':<20} {s.sparsest_cut_value:.4f}")
    return 0


def cmd_route(args) -> int:
    from .core import mclb_route
    from .routing import assign_vcs, build_routing_table, channel_loads, ndbt_route

    topo = _load_or_named(args.topology, args.routers)
    if args.policy == "mclb":
        routes = mclb_route(topo, time_limit=args.time_limit).routes
    else:
        routes = ndbt_route(topo, seed=args.seed)
    loads = channel_loads(routes)
    vca = assign_vcs(routes, seed=args.seed)
    table = build_routing_table(routes, vca)
    table.validate()
    print(f"policy={args.policy} max_load={loads.max_load} "
          f"mean_load={loads.mean_load:.2f} vcs={vca.num_vcs}")
    print(f"saturation bound: {loads.saturation_injection(topo.n):.3f} "
          f"flits/node/cycle")
    return 0


def cmd_simulate(args) -> int:
    from .experiments.registry import routed_table
    from .sim import (
        latency_throughput_curve,
        memory_traffic,
        shuffle_pattern,
        uniform_random,
    )

    topo = _load_or_named(args.topology, args.routers)
    table = routed_table(topo, args.policy, seed=args.seed, use_cache=False)
    if args.traffic == "uniform":
        traffic = uniform_random(topo.n)
    elif args.traffic == "memory":
        traffic = memory_traffic(topo.layout)
    else:
        traffic = shuffle_pattern(topo.n)
    rates = [args.max_rate * (k + 1) / args.points for k in range(args.points)]
    curve = latency_throughput_curve(
        table, traffic, rates,
        link_class=args.link_class or topo.link_class,
        warmup=args.warmup, measure=args.measure, seed=args.seed,
    )
    print(f"{'offered':>8} {'latency(cyc)':>13} {'accepted':>9} {'saturated':>9}")
    for p in curve.points:
        print(f"{p.offered_rate:8.3f} {p.avg_latency_cycles:13.1f} "
              f"{p.throughput_packets_node_cycle:9.3f} {str(p.saturated):>9}")
    print(f"saturation throughput: {curve.saturation_throughput_ns:.3f} "
          f"packets/node/ns @ {curve.clock_ghz} GHz")
    return 0


def cmd_report(args) -> int:
    from .experiments.report import generate_report

    text = generate_report(fast=not args.full)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"\n[written to {args.out}]", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="discover a topology")
    g.add_argument("--rows", type=int, default=4)
    g.add_argument("--cols", type=int, default=5)
    g.add_argument("--link-class", choices=("small", "medium", "large"),
                   default="medium")
    g.add_argument("--radix", type=int, default=4)
    g.add_argument("--objective",
                   choices=("latency", "sparsest-cut", "shuffle", "sa"),
                   default="latency")
    g.add_argument("--symmetric", action="store_true")
    g.add_argument("--diameter", type=int, default=None)
    g.add_argument("--time-limit", type=float, default=120.0)
    g.add_argument("--sa-steps", type=int, default=8000)
    g.add_argument("--out", default=None, help="save topology JSON here")
    g.set_defaults(fn=cmd_generate)

    e = sub.add_parser("evaluate", help="Table II metrics for a topology")
    e.add_argument("topology")
    e.add_argument("--routers", type=int, default=20)
    e.set_defaults(fn=cmd_evaluate)

    r = sub.add_parser("route", help="route a topology and report loads")
    r.add_argument("topology")
    r.add_argument("--routers", type=int, default=20)
    r.add_argument("--policy", choices=("mclb", "ndbt"), default="mclb")
    r.add_argument("--time-limit", type=float, default=60.0)
    r.add_argument("--seed", type=int, default=0)
    r.set_defaults(fn=cmd_route)

    s = sub.add_parser("simulate", help="latency/throughput sweep")
    s.add_argument("topology")
    s.add_argument("--routers", type=int, default=20)
    s.add_argument("--policy", choices=("mclb", "ndbt"), default="ndbt")
    s.add_argument("--traffic", choices=("uniform", "memory", "shuffle"),
                   default="uniform")
    s.add_argument("--link-class", default=None)
    s.add_argument("--max-rate", type=float, default=0.4)
    s.add_argument("--points", type=int, default=8)
    s.add_argument("--warmup", type=int, default=300)
    s.add_argument("--measure", type=int, default=1200)
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(fn=cmd_simulate)

    rep = sub.add_parser("report", help="regenerate the experiment report")
    rep.add_argument("--full", action="store_true",
                     help="full-budget sweeps (slow)")
    rep.add_argument("--out", default=None)
    rep.set_defaults(fn=cmd_report)
    return p


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
