#!/usr/bin/env bash
# CI-friendly fast tier: the full unit/integration suite minus the tests
# marked `slow` (heavy simulation sweeps).  Finishes in a couple of
# minutes on one core; the full tier is plain `pytest`, and the paper
# figure reproductions are `pytest benchmarks/ --benchmark-only -s`.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m pytest -q -m "not slow" "$@"
