"""Merge .gen/*.json (from generate_all.py) into the package data files
consumed by repro.topology.expert_data and repro.core.pregenerated.

Thin CLI over :func:`repro.runner.artifacts.freeze`.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.runner.artifacts import freeze  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--gen", default=os.path.join(HERE, "..", ".gen"),
                    help="generation output dir (default .gen)")
    ap.add_argument("--src", default=os.path.join(HERE, "..", "src"),
                    help="package source root (default src)")
    args = ap.parse_args(argv)
    freeze(args.gen, args.src)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
