"""Merge .gen/*.json (from generate_all.py) into the package data files
consumed by repro.topology.expert_data and repro.core.pregenerated."""

import json
import os

HERE = os.path.dirname(__file__)
GEN = os.path.join(HERE, "..", ".gen")
TOPO_DATA = os.path.join(HERE, "..", "src", "repro", "topology", "_data")
CORE_DATA = os.path.join(HERE, "..", "src", "repro", "core", "_data")
os.makedirs(TOPO_DATA, exist_ok=True)
os.makedirs(CORE_DATA, exist_ok=True)


def load(fname):
    p = os.path.join(GEN, fname)
    if os.path.exists(p):
        with open(p) as fh:
            return json.load(fh)
    return {}


experts = {}
for fname, n in (("experts20.json", 20), ("experts30.json", 30)):
    for name, edges in load(fname).items():
        experts[f"{name}/{n}"] = edges
for name, edges in load("lpbt20.json").items():
    experts[f"{name}/20"] = edges
with open(os.path.join(TOPO_DATA, "experts.json"), "w") as fh:
    json.dump(experts, fh, indent=1)
print(f"experts.json: {len(experts)} entries")

netsmith = {}
for fname, n in (("ns20.json", 20), ("ns30.json", 30), ("ns48.json", 48)):
    for key, links in load(fname).items():
        kind, cls = key.split("/")
        netsmith[f"{kind}/{cls}/{n}"] = links
with open(os.path.join(CORE_DATA, "netsmith.json"), "w") as fh:
    json.dump(netsmith, fh, indent=1)
print(f"netsmith.json: {len(netsmith)} entries")
