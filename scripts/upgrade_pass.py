"""Fill missing artifacts and upgrade weaker frozen designs."""
import json, os, time
from repro.topology import LAYOUT_4X5, LAYOUT_6X5, LAYOUT_8X6, average_hops, diameter
from repro.core import NetSmithConfig, anneal_topology, generate_latop

OUT = os.path.join(os.path.dirname(__file__), "..", ".gen")

def log(*a): print(f"[{time.strftime('%H:%M:%S')}]", *a, flush=True)

def load(f):
    p = os.path.join(OUT, f)
    return json.load(open(p)) if os.path.exists(p) else {}

def save(f, obj):
    json.dump(obj, open(os.path.join(OUT, f), "w"), indent=1)

# 1. fill LatOp30 medium/large via MILP(300s) + SA fallback/polish
ns30 = load("ns30.json")
for cls in ("medium", "large"):
    key = f"latop/{cls}"
    if key in ns30:
        continue
    t0 = time.time()
    topo, obj = None, float("inf")
    try:
        gen = generate_latop(
            NetSmithConfig(layout=LAYOUT_6X5, link_class=cls, diameter_bound=5),
            time_limit=300,
        )
        topo, obj = gen.topology, gen.objective
    except RuntimeError:
        pass
    sa = anneal_topology(
        NetSmithConfig(layout=LAYOUT_6X5, link_class=cls),
        objective="latency", steps=8000, seed=5, initial=topo,
    )
    if sa.objective < obj:
        topo = sa.topology
    log("LatOp30", cls, topo.num_links, diameter(topo), round(average_hops(topo), 3),
        f"{time.time()-t0:.0f}s")
    ns30[key] = sorted(topo.directed_links)
    save("ns30.json", ns30)

# 2. upgrade 4x5 latop medium/large with longer MILP + SA polish
ns20 = load("ns20.json")
from repro.topology import Topology
from repro.core.pregenerated import lookup
for cls, tl in (("medium", 300), ("large", 300)):
    t0 = time.time()
    cur_links = lookup("latop", cls, 20)
    cur = Topology(LAYOUT_4X5, cur_links, link_class=cls)
    best_obj = float(cur.hop_matrix().sum())
    best = cur
    try:
        gen = generate_latop(
            NetSmithConfig(layout=LAYOUT_4X5, link_class=cls,
                           diameter_bound=4 if cls == "medium" else 3),
            time_limit=tl,
        )
        if gen.objective < best_obj:
            best, best_obj = gen.topology, gen.objective
    except RuntimeError:
        pass
    sa = anneal_topology(
        NetSmithConfig(layout=LAYOUT_4X5, link_class=cls),
        objective="latency", steps=6000, seed=11, initial=best,
    )
    if sa.objective < best_obj:
        best, best_obj = sa.topology, sa.objective
    log("LatOp20-upgrade", cls, best.num_links, diameter(best),
        round(average_hops(best), 3), f"{time.time()-t0:.0f}s")
    ns20[f"latop/{cls}"] = sorted(best.directed_links)
    save("ns20.json", ns20)

# 3. longer SA for 48-router designs
ns48 = load("ns48.json")
for cls in ("small", "medium", "large"):
    t0 = time.time()
    cur = Topology(LAYOUT_8X6, ns48[f"latop/{cls}"], link_class=cls)
    sa = anneal_topology(
        NetSmithConfig(layout=LAYOUT_8X6, link_class=cls),
        objective="latency", steps=25000, seed=17, initial=cur,
    )
    new = sa.topology
    if float(new.hop_matrix().sum()) < float(cur.hop_matrix().sum()):
        ns48[f"latop/{cls}"] = sorted(new.directed_links)
        log("LatOp48-upgrade", cls, new.num_links, diameter(new),
            round(average_hops(new), 3), f"{time.time()-t0:.0f}s")
    else:
        log("LatOp48-upgrade", cls, "no improvement", f"{time.time()-t0:.0f}s")
    save("ns48.json", ns48)

log("UPGRADE DONE")
