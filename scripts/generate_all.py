"""One-shot generation of all frozen artifacts (run offline, ~60-90 min).

Produces JSON files under .gen/ :
  experts20.json  — signature-matched expert reconstructions at 20 routers
  experts30.json  — same at 30 routers
  ns20.json       — NS SCOp/ShufOpt at 20 (LatOp already frozen)
  ns30.json       — NS LatOp at 30
  ns48.json       — NS LatOp at 48 (SA)
  lpbt20.json     — LPBT signature reconstructions
"""

import json
import os
import sys
import time

from repro.topology import (
    LAYOUT_4X5,
    LAYOUT_6X5,
    LAYOUT_8X6,
    Signature,
    Topology,
    average_hops,
    bisection_bandwidth,
    diameter,
    reconstruct,
    summarize,
)
from repro.core import NetSmithConfig, anneal_topology, generate_scop, generate_shufopt, generate_latop

OUT = os.path.join(os.path.dirname(__file__), "..", ".gen")
os.makedirs(OUT, exist_ok=True)


def save(fname, obj):
    with open(os.path.join(OUT, fname), "w") as fh:
        json.dump(obj, fh, indent=1)
    print(f"WROTE {fname}", flush=True)


def log(*a):
    print(f"[{time.strftime('%H:%M:%S')}]", *a, flush=True)


def load(fname):
    p = os.path.join(OUT, fname)
    if os.path.exists(p):
        with open(p) as fh:
            return json.load(fh)
    return {}


# -- 1. expert reconstructions at 20 routers (Table II upper half) -----------
SIGS20 = {
    "Kite-Small": ("small", Signature(38, 4, 2.38, 8)),
    "Kite-Medium": ("medium", Signature(40, 4, 2.25, 8)),
    "Kite-Large": ("large", Signature(36, 5, 2.27, 8)),
    "ButterDonut": ("large", Signature(36, 4, 2.32, 8)),
    "DoubleButterfly": ("large", Signature(32, 4, 2.59, 8)),
}

experts20 = load("experts20.json")
for name, (cls, sig) in SIGS20.items():
    if name in experts20:
        continue
    t0 = time.time()
    edges, cost = reconstruct(LAYOUT_4X5, cls, sig, steps=6000, restarts=3, seed=7)
    t = Topology.from_undirected(LAYOUT_4X5, edges, name=name, link_class=cls)
    s = summarize(t)
    log(name, "cost", round(cost, 3), s.as_row(), f"{time.time()-t0:.0f}s")
    experts20[name] = edges
    save("experts20.json", experts20)

# -- 2. LPBT signature reconstructions at 20 (Table II) -----------------------
# LPBT emits asymmetric-ish sparse nets; published rows are symmetric-countable.
LPBT_SIGS = {
    "LPBT-Power": ("small", Signature(33, 5, 2.59, 4)),
    "LPBT-Hops": ("small", Signature(34, 6, 2.74, 4)),
}
lpbt20 = load("lpbt20.json")
for name, (cls, sig) in LPBT_SIGS.items():
    if name in lpbt20:
        continue
    t0 = time.time()
    edges, cost = reconstruct(LAYOUT_4X5, cls, sig, steps=6000, restarts=3, seed=11)
    t = Topology.from_undirected(LAYOUT_4X5, edges, name=name, link_class=cls)
    log(name, "cost", round(cost, 3), summarize(t).as_row(), f"{time.time()-t0:.0f}s")
    lpbt20[name] = edges
    save("lpbt20.json", lpbt20)

# -- 3. NS SCOp + ShufOpt at 20 ------------------------------------------------
ns20 = load("ns20.json")
for cls, tl in (("small", 40), ("medium", 60), ("large", 60)):
    if f"scop/{cls}" in ns20:
        continue
    t0 = time.time()
    try:
        gen, diag = generate_scop(
            NetSmithConfig(layout=LAYOUT_4X5, link_class=cls, diameter_bound=4),
            time_limit=tl,
            max_iterations=8,
        )
        topo = gen.topology
        # SA polish on the SCOp objective from the MILP incumbent
        sa = anneal_topology(
            NetSmithConfig(layout=LAYOUT_4X5, link_class=cls),
            objective="sparsest_cut",
            steps=400,
            seed=3,
            initial=topo,
        )
        if sa.objective > gen.objective:
            topo = sa.topology
        log("SCOp", cls, summarize(topo).as_row(), f"{time.time()-t0:.0f}s",
            "iters", diag.iterations)
        ns20[f"scop/{cls}"] = sorted(topo.directed_links)
    except Exception as e:  # keep going; SCOp is the most fragile stage
        log("SCOp", cls, "FAILED:", repr(e))
    save("ns20.json", ns20)

for cls in ("small", "medium", "large"):
    if f"shufopt/{cls}" in ns20:
        continue
    t0 = time.time()
    try:
        gen = generate_shufopt(
            NetSmithConfig(layout=LAYOUT_4X5, link_class=cls, diameter_bound=5),
            time_limit=120,
        )
        log("ShufOpt", cls, summarize(gen.topology).as_row(), f"{time.time()-t0:.0f}s",
            "gap", round(gen.mip_gap, 3))
        ns20[f"shufopt/{cls}"] = sorted(gen.topology.directed_links)
    except Exception as e:
        log("ShufOpt", cls, "FAILED:", repr(e))
    save("ns20.json", ns20)

# -- 4. 30-router: NS LatOp (MILP) + expert reconstructions --------------------
ns30 = load("ns30.json")
for cls, tl in (("small", 180), ("medium", 180), ("large", 180)):
    if f"latop/{cls}" in ns30:
        continue
    t0 = time.time()
    try:
        try:
            gen = generate_latop(
                NetSmithConfig(layout=LAYOUT_6X5, link_class=cls, diameter_bound=6),
                time_limit=tl,
            )
            topo, obj = gen.topology, gen.objective
        except RuntimeError:
            topo, obj = None, float("inf")  # MILP found no incumbent: SA-only
        sa = anneal_topology(
            NetSmithConfig(layout=LAYOUT_6X5, link_class=cls),
            objective="latency", steps=6000, seed=5, initial=topo,
        )
        if sa.objective < obj:
            topo = sa.topology
        log("LatOp30", cls, topo.num_links, diameter(topo),
            round(average_hops(topo), 3), f"{time.time()-t0:.0f}s")
        ns30[f"latop/{cls}"] = sorted(topo.directed_links)
    except Exception as e:
        log("LatOp30", cls, "FAILED:", repr(e))
    save("ns30.json", ns30)

SIGS30 = {
    "Kite-Small": ("small", Signature(58, 5, 2.91, 10)),
    "Kite-Medium": ("medium", Signature(60, 5, 2.66, 10)),
    "Kite-Large": ("large", Signature(56, 5, 2.69, 10)),
    "ButterDonut": ("large", Signature(44, 10, 3.71, 8)),
    "DoubleButterfly": ("large", Signature(48, 5, 2.90, 8)),
}
experts30 = load("experts30.json")
for name, (cls, sig) in SIGS30.items():
    if name in experts30:
        continue
    t0 = time.time()
    edges, cost = reconstruct(
        LAYOUT_6X5, cls, sig, steps=4000, restarts=2, seed=13, exact_bisection=False
    )
    t = Topology.from_undirected(LAYOUT_6X5, edges, name=name, link_class=cls)
    log(name, "30r cost", round(cost, 3), t.num_links, diameter(t),
        round(average_hops(t), 3), f"{time.time()-t0:.0f}s")
    experts30[name] = edges
    save("experts30.json", experts30)

# -- 5. 48-router NS LatOp via SA (Fig. 11) -------------------------------------
ns48 = load("ns48.json")
for cls in ("small", "medium", "large"):
    if f"latop/{cls}" in ns48:
        continue
    t0 = time.time()
    sa = anneal_topology(
        NetSmithConfig(layout=LAYOUT_8X6, link_class=cls),
        objective="latency", steps=9000, seed=9,
    )
    t = sa.topology
    log("LatOp48", cls, t.num_links, diameter(t), round(average_hops(t), 3),
        f"{time.time()-t0:.0f}s")
    ns48[f"latop/{cls}"] = sorted(t.directed_links)
    save("ns48.json", ns48)

log("ALL DONE")
