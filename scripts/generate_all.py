"""Generate all frozen artifacts (offline; ~60-90 min serial).

Thin CLI over :mod:`repro.runner.artifacts`: every artifact — expert or
LPBT signature reconstruction, NS SCOp/ShufOpt/LatOp generation, SA
scale-up — is an independent task fanned across ``--parallel`` worker
processes and checkpointed twice (the ``.gen/*.json`` group files plus
the content-addressed runner cache), so the pipeline is safe to
interrupt and rerun at any point.

Outputs under .gen/ :
  experts20.json  — signature-matched expert reconstructions at 20 routers
  experts30.json  — same at 30 routers
  ns20.json       — NS SCOp/ShufOpt at 20 (LatOp already frozen)
  ns30.json       — NS LatOp at 30
  ns48.json       — NS LatOp at 48 (SA)
  lpbt20.json     — LPBT signature reconstructions

Merge into the package data with scripts/freeze_artifacts.py.
"""

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.runner import Runner  # noqa: E402
from repro.runner.artifacts import generate_all  # noqa: E402

DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".gen")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=DEFAULT_OUT, help="output dir (default .gen)")
    ap.add_argument("--parallel", type=int, default=1, metavar="N",
                    help="worker processes (1 = serial, 0 = all cores)")
    ap.add_argument("--cache-dir", default=None,
                    help="runner result cache (default $REPRO_CACHE_DIR "
                         "or ./.repro-cache)")
    ap.add_argument("--no-cache", action="store_true",
                    help="skip the runner cache (group files still resume)")
    ap.add_argument("--only", nargs="*", default=None, metavar="GROUP",
                    help="restrict to group names (e.g. ns20 experts30) or "
                         "task names (e.g. 'ns20:scop/small')")
    args = ap.parse_args(argv)

    def log(msg: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)

    runner = Runner(
        parallel=args.parallel, cache_dir=args.cache_dir, no_cache=args.no_cache
    )
    counts = generate_all(args.out, runner=runner, only=args.only, log=log)
    if counts["failed"]:
        log(f"PARTIAL: {counts['done']} built, {counts['skipped']} already "
            f"frozen, {counts['failed']} FAILED (see tracebacks above) — "
            f"exiting non-zero; do not freeze these group files blindly")
        return 1
    log(f"ALL DONE: {counts['done']} built, {counts['skipped']} already frozen, "
        f"0 failed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
